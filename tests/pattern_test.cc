// Tests for the TACO compression patterns (Sec. III of the paper):
// the worked examples of Fig. 4 and Fig. 9, then randomized property
// sweeps validating FindDep / FindPrec / RemoveDep against brute-force
// window enumeration for every pattern and both axes.

#include <algorithm>
#include <random>
#include <set>

#include <gtest/gtest.h>

#include "graph_test_util.h"
#include "taco/pattern.h"

namespace taco {
namespace {

using test::CellSet;
using test::ToCellSet;

// Builds a compressed edge by inserting `deps` one by one with `pattern`,
// starting from a Single edge. Fails the test if any AddDep is rejected.
CompressedEdge BuildEdge(PatternType pattern, const std::vector<Dependency>& deps,
                         Axis axis) {
  EXPECT_GE(deps.size(), 2u);
  CompressedEdge edge = MakeSingleEdge(deps[0].prec, deps[0].dep,
                                       deps[0].head_flags, deps[0].tail_flags);
  const Pattern& p = GetPattern(pattern);
  for (size_t i = 1; i < deps.size(); ++i) {
    auto merged = p.AddDep(edge, deps[i], axis);
    EXPECT_TRUE(merged.has_value())
        << "AddDep rejected dependency " << i << ": " << deps[i].prec.ToString()
        << " -> " << deps[i].dep.ToString();
    if (!merged) return edge;
    edge = *merged;
  }
  return edge;
}

Dependency Dep(const Range& prec, const Cell& dep) {
  Dependency d;
  d.prec = prec;
  d.dep = dep;
  return d;
}

// ---------------------------------------------------------------------------
// Paper examples

TEST(PatternPaperTest, Fig4aRelativeRelative) {
  // C1=SUM(A1:B3) ... C4=SUM(A4:B6): sliding window.
  std::vector<Dependency> deps = {
      Dep(Range(1, 1, 2, 3), Cell{3, 1}), Dep(Range(1, 2, 2, 4), Cell{3, 2}),
      Dep(Range(1, 3, 2, 5), Cell{3, 3}), Dep(Range(1, 4, 2, 6), Cell{3, 4})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);

  EXPECT_EQ(edge.prec, Range(1, 1, 2, 6));  // A1:B6
  EXPECT_EQ(edge.dep, Range(3, 1, 3, 4));   // C1:C4
  EXPECT_EQ(edge.pattern, PatternType::kRR);
  EXPECT_EQ(edge.meta.h_rel, (Offset{-2, 0}));  // paper: hRel=(-2,0)
  EXPECT_EQ(edge.meta.t_rel, (Offset{-1, 2}));  // paper: tRel=(-1,2)
  EXPECT_EQ(edge.compressed_count, 4u);
}

TEST(PatternPaperTest, Fig4aAddDepSectionExample) {
  // Sec. III-B: e' = A5:B7 -> C5 extends the Fig. 4a edge.
  std::vector<Dependency> deps = {
      Dep(Range(1, 1, 2, 3), Cell{3, 1}), Dep(Range(1, 2, 2, 4), Cell{3, 2}),
      Dep(Range(1, 3, 2, 5), Cell{3, 3}), Dep(Range(1, 4, 2, 6), Cell{3, 4})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);
  auto merged = GetPattern(PatternType::kRR)
                    .AddDep(edge, Dep(Range(1, 5, 2, 7), Cell{3, 5}),
                            Axis::kColumn);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->prec, Range(1, 1, 2, 7));
  EXPECT_EQ(merged->dep, Range(3, 1, 3, 5));

  // A mismatched relative position must be rejected.
  auto rejected = GetPattern(PatternType::kRR)
                      .AddDep(edge, Dep(Range(1, 9, 2, 11), Cell{3, 5}),
                              Axis::kColumn);
  EXPECT_FALSE(rejected.has_value());
}

TEST(PatternPaperTest, Fig4bRelativeFixed) {
  // C1=SUM(A1:B4) ... C4=SUM(A4:B4): shrinking window.
  std::vector<Dependency> deps = {
      Dep(Range(1, 1, 2, 4), Cell{3, 1}), Dep(Range(1, 2, 2, 4), Cell{3, 2}),
      Dep(Range(1, 3, 2, 4), Cell{3, 3}), Dep(Range(1, 4, 2, 4), Cell{3, 4})};
  CompressedEdge edge = BuildEdge(PatternType::kRF, deps, Axis::kColumn);

  EXPECT_EQ(edge.prec, Range(1, 1, 2, 4));         // A1:B4
  EXPECT_EQ(edge.dep, Range(3, 1, 3, 4));          // C1:C4
  EXPECT_EQ(edge.meta.h_rel, (Offset{-2, 0}));
  EXPECT_EQ(edge.meta.t_fix, (Cell{2, 4}));        // paper: tFix=(2,4)
}

TEST(PatternPaperTest, Fig4cFixedRelative) {
  // C1=SUM(A1:B1) ... C3=SUM(A1:B3): expanding window.
  std::vector<Dependency> deps = {
      Dep(Range(1, 1, 2, 1), Cell{3, 1}), Dep(Range(1, 1, 2, 2), Cell{3, 2}),
      Dep(Range(1, 1, 2, 3), Cell{3, 3})};
  CompressedEdge edge = BuildEdge(PatternType::kFR, deps, Axis::kColumn);

  EXPECT_EQ(edge.prec, Range(1, 1, 2, 3));      // A1:B3
  EXPECT_EQ(edge.dep, Range(3, 1, 3, 3));       // C1:C3
  EXPECT_EQ(edge.meta.h_fix, (Cell{1, 1}));     // paper: hFix=(1,1)
  EXPECT_EQ(edge.meta.t_rel, (Offset{-1, 0}));  // paper: tRel=(-1,0)
}

TEST(PatternPaperTest, Fig4dFixedFixed) {
  // C1..C3 = SUM(A1:B3): fixed window.
  std::vector<Dependency> deps = {
      Dep(Range(1, 1, 2, 3), Cell{3, 1}), Dep(Range(1, 1, 2, 3), Cell{3, 2}),
      Dep(Range(1, 1, 2, 3), Cell{3, 3})};
  CompressedEdge edge = BuildEdge(PatternType::kFF, deps, Axis::kColumn);

  EXPECT_EQ(edge.prec, Range(1, 1, 2, 3));
  EXPECT_EQ(edge.dep, Range(3, 1, 3, 3));
  EXPECT_EQ(edge.meta.h_fix, (Cell{1, 1}));
  EXPECT_EQ(edge.meta.t_fix, (Cell{2, 3}));
}

TEST(PatternPaperTest, Fig9RRChain) {
  // A2=A1+1 ... A4=A3+1: the chain of Fig. 9.
  std::vector<Dependency> deps = {Dep(Range(Cell{1, 1}), Cell{1, 2}),
                                  Dep(Range(Cell{1, 2}), Cell{1, 3}),
                                  Dep(Range(Cell{1, 3}), Cell{1, 4})};
  CompressedEdge edge = BuildEdge(PatternType::kRRChain, deps, Axis::kColumn);

  EXPECT_EQ(edge.prec, Range(1, 1, 1, 3));           // A1:A3
  EXPECT_EQ(edge.dep, Range(1, 2, 1, 4));            // A2:A4
  EXPECT_EQ(edge.meta.h_rel, (Offset{0, -1}));       // l = ABOVE

  // Paper: findDep over the chain returns the rest of the chain at once.
  std::vector<Range> out;
  GetPattern(PatternType::kRRChain).FindDep(edge, Range(Cell{1, 2}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(1, 3, 1, 4));  // A3:A4

  out.clear();
  GetPattern(PatternType::kRRChain).FindDep(edge, Range(Cell{1, 1}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(1, 2, 1, 4));  // the whole chain

  // Transitive precedents of A4: A1:A3.
  out.clear();
  GetPattern(PatternType::kRRChain).FindPrec(edge, Range(Cell{1, 4}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(1, 1, 1, 3));
}

TEST(PatternPaperTest, RRChainBelowDirection) {
  // Chain referencing the cell *below*: A1=A2+1, A2=A3+1, A3=A4+1.
  std::vector<Dependency> deps = {Dep(Range(Cell{1, 2}), Cell{1, 1}),
                                  Dep(Range(Cell{1, 3}), Cell{1, 2}),
                                  Dep(Range(Cell{1, 4}), Cell{1, 3})};
  CompressedEdge edge = BuildEdge(PatternType::kRRChain, deps, Axis::kColumn);
  EXPECT_EQ(edge.meta.h_rel, (Offset{0, 1}));  // l = BELOW

  std::vector<Range> out;
  // Dependents of A4: the whole chain above it.
  GetPattern(PatternType::kRRChain).FindDep(edge, Range(Cell{1, 4}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(1, 1, 1, 3));
}

TEST(PatternPaperTest, Fig2SlidingWindowLookup) {
  // The Fig. 2 discussion: Ai -> Ni edges compressed as RR; querying
  // A3:A10 must return dependents N3:N10 in O(1).
  std::vector<Dependency> deps;
  for (int row = 3; row <= 20; ++row) {
    deps.push_back(Dep(Range(Cell{1, row}), Cell{14, row}));
  }
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);
  std::vector<Range> out;
  GetPattern(PatternType::kRR).FindDep(edge, Range(1, 3, 1, 10), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(14, 3, 14, 10));  // N3:N10
}

// ---------------------------------------------------------------------------
// Merge-invariant edge cases

TEST(PatternMergeTest, RejectsNonAdjacentDep) {
  CompressedEdge edge = MakeSingleEdge(Range(1, 1, 1, 3), Cell{2, 1});
  // Same relative shape but two rows below: not adjacent.
  auto merged = GetPattern(PatternType::kRR)
                    .AddDep(edge, Dep(Range(1, 3, 1, 5), Cell{2, 3}),
                            Axis::kColumn);
  EXPECT_FALSE(merged.has_value());
}

TEST(PatternMergeTest, RejectsSidewaysGrowthOfColumnEdge) {
  // dep C1:C3 cannot absorb D2 (would make the dependent box 2-D).
  std::vector<Dependency> deps = {Dep(Range(Cell{1, 1}), Cell{3, 1}),
                                  Dep(Range(Cell{1, 2}), Cell{3, 2}),
                                  Dep(Range(Cell{1, 3}), Cell{3, 3})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);
  auto merged = GetPattern(PatternType::kRR)
                    .AddDep(edge, Dep(Range(Cell{2, 2}), Cell{4, 2}),
                            Axis::kRow);
  EXPECT_FALSE(merged.has_value());
}

TEST(PatternMergeTest, RowAxisCompression) {
  // A row of formulas: A5=A1+A2, B5=B1+B2, C5=C1+C2.
  std::vector<Dependency> deps = {Dep(Range(1, 1, 1, 2), Cell{1, 5}),
                                  Dep(Range(2, 1, 2, 2), Cell{2, 5}),
                                  Dep(Range(3, 1, 3, 2), Cell{3, 5})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kRow);
  EXPECT_EQ(edge.dep, Range(1, 5, 3, 5));
  EXPECT_EQ(edge.prec, Range(1, 1, 3, 2));
  EXPECT_EQ(edge.meta.axis, Axis::kRow);

  std::vector<Range> out;
  GetPattern(PatternType::kRR).FindDep(edge, Range(Cell{2, 1}), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], Range(Cell{2, 5}));
}

TEST(PatternMergeTest, ExtendAtHeadEnd) {
  // Deps inserted bottom-up still merge (extension before dep.head).
  std::vector<Dependency> deps = {Dep(Range(Cell{1, 5}), Cell{2, 5}),
                                  Dep(Range(Cell{1, 4}), Cell{2, 4}),
                                  Dep(Range(Cell{1, 3}), Cell{2, 3})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);
  EXPECT_EQ(edge.dep, Range(2, 3, 2, 5));
  EXPECT_EQ(edge.prec, Range(1, 3, 1, 5));
}

TEST(PatternMergeTest, FFRejectsDifferentWindow) {
  CompressedEdge edge = MakeSingleEdge(Range(1, 1, 2, 3), Cell{3, 1});
  auto merged = GetPattern(PatternType::kFF)
                    .AddDep(edge, Dep(Range(1, 1, 2, 4), Cell{3, 2}),
                            Axis::kColumn);
  EXPECT_FALSE(merged.has_value());
}

TEST(PatternMergeTest, ChainRejectsNonUnitReference) {
  CompressedEdge edge = MakeSingleEdge(Range(Cell{1, 1}), Cell{1, 3});
  // Reference two rows up is RR but not a chain.
  auto merged = GetPattern(PatternType::kRRChain)
                    .AddDep(edge, Dep(Range(Cell{1, 2}), Cell{1, 4}),
                            Axis::kColumn);
  EXPECT_FALSE(merged.has_value());
}

// ---------------------------------------------------------------------------
// RemoveDep worked example (paper Sec. III-B: removing C2 from C1:C4).

TEST(PatternRemoveTest, SplitsIntoTwoEdges) {
  std::vector<Dependency> deps = {
      Dep(Range(1, 1, 2, 3), Cell{3, 1}), Dep(Range(1, 2, 2, 4), Cell{3, 2}),
      Dep(Range(1, 3, 2, 5), Cell{3, 3}), Dep(Range(1, 4, 2, 6), Cell{3, 4})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);

  std::vector<CompressedEdge> out;
  GetPattern(PatternType::kRR).RemoveDep(edge, Range(Cell{3, 2}), &out);
  ASSERT_EQ(out.size(), 2u);
  std::sort(out.begin(), out.end(),
            [](const CompressedEdge& a, const CompressedEdge& b) {
              return a.dep < b.dep;
            });
  // C1 alone demotes to Single with its own window as precedent.
  EXPECT_EQ(out[0].dep, Range(Cell{3, 1}));
  EXPECT_EQ(out[0].pattern, PatternType::kSingle);
  EXPECT_EQ(out[0].prec, Range(1, 1, 2, 3));
  // C3:C4 keeps RR with a recomputed precedent A3:B6.
  EXPECT_EQ(out[1].dep, Range(3, 3, 3, 4));
  EXPECT_EQ(out[1].pattern, PatternType::kRR);
  EXPECT_EQ(out[1].prec, Range(1, 3, 2, 6));
  EXPECT_EQ(out[1].compressed_count, 2u);
}

TEST(PatternRemoveTest, RemoveAllLeavesNothing) {
  std::vector<Dependency> deps = {Dep(Range(Cell{1, 1}), Cell{2, 1}),
                                  Dep(Range(Cell{1, 2}), Cell{2, 2})};
  CompressedEdge edge = BuildEdge(PatternType::kRR, deps, Axis::kColumn);
  std::vector<CompressedEdge> out;
  GetPattern(PatternType::kRR).RemoveDep(edge, Range(2, 1, 2, 2), &out);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// RR-GapOne (Sec. V extension)

TEST(PatternGapTest, BuildsStride2Edge) {
  // Formulas at C1, C3, C5, each referencing the cell to the left.
  std::vector<Dependency> deps = {Dep(Range(Cell{2, 1}), Cell{3, 1}),
                                  Dep(Range(Cell{2, 3}), Cell{3, 3}),
                                  Dep(Range(Cell{2, 5}), Cell{3, 5})};
  CompressedEdge edge = BuildEdge(PatternType::kRRGapOne, deps, Axis::kColumn);
  EXPECT_EQ(edge.dep, Range(3, 1, 3, 5));
  EXPECT_EQ(edge.compressed_count, 3u);
  EXPECT_EQ(edge.meta.stride, 2);

  // The in-between rows are NOT dependents.
  std::vector<Range> out;
  GetPattern(PatternType::kRRGapOne).FindDep(edge, Range(2, 1, 2, 5), &out);
  EXPECT_EQ(ToCellSet(out), (CellSet{{3, 1}, {3, 3}, {3, 5}}));

  out.clear();
  GetPattern(PatternType::kRRGapOne).FindDep(edge, Range(Cell{2, 2}), &out);
  EXPECT_TRUE(out.empty());

  // Precedents likewise skip the gaps.
  out.clear();
  GetPattern(PatternType::kRRGapOne).FindPrec(edge, Range(3, 1, 3, 5), &out);
  EXPECT_EQ(ToCellSet(out), (CellSet{{2, 1}, {2, 3}, {2, 5}}));
}

TEST(PatternGapTest, RejectsOffStrideExtension) {
  std::vector<Dependency> deps = {Dep(Range(Cell{2, 1}), Cell{3, 1}),
                                  Dep(Range(Cell{2, 3}), Cell{3, 3})};
  CompressedEdge edge = BuildEdge(PatternType::kRRGapOne, deps, Axis::kColumn);
  auto merged = GetPattern(PatternType::kRRGapOne)
                    .AddDep(edge, Dep(Range(Cell{2, 4}), Cell{3, 4}),
                            Axis::kColumn);
  EXPECT_FALSE(merged.has_value());
}

TEST(PatternGapTest, RemoveDecomposesToSingles) {
  std::vector<Dependency> deps = {Dep(Range(Cell{2, 1}), Cell{3, 1}),
                                  Dep(Range(Cell{2, 3}), Cell{3, 3}),
                                  Dep(Range(Cell{2, 5}), Cell{3, 5})};
  CompressedEdge edge = BuildEdge(PatternType::kRRGapOne, deps, Axis::kColumn);
  std::vector<CompressedEdge> out;
  GetPattern(PatternType::kRRGapOne).RemoveDep(edge, Range(Cell{3, 3}), &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].pattern, PatternType::kSingle);
  EXPECT_EQ(out[0].dep, Range(Cell{3, 1}));
  EXPECT_EQ(out[1].dep, Range(Cell{3, 5}));
}

// ---------------------------------------------------------------------------
// Randomized property sweeps: FindDep / FindPrec / RemoveDep versus window
// enumeration, for every pattern and both axes.

struct PropertyParam {
  PatternType pattern;
  Axis axis;
  uint32_t seed;
};

// Pretty parameter names in test listings.
std::string ParamName(const ::testing::TestParamInfo<PropertyParam>& info) {
  std::string name(PatternTypeToString(info.param.pattern));
  name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
  name += info.param.axis == Axis::kColumn ? "Col" : "Row";
  name += "S" + std::to_string(info.param.seed);
  return name;
}

class PatternPropertyTest : public ::testing::TestWithParam<PropertyParam> {
 protected:
  // Generates a random valid edge of the parameterized pattern by
  // constructing a coherent dependency list and AddDep-ing it together.
  CompressedEdge RandomEdge(std::mt19937& rng,
                            std::vector<Dependency>* deps_out) {
    const PropertyParam p = GetParam();
    std::uniform_int_distribution<int32_t> small(0, 3);
    std::uniform_int_distribution<int32_t> len_dist(2, 8);
    std::uniform_int_distribution<int32_t> start(12, 24);

    const int32_t len = len_dist(rng);
    const int32_t stride = p.pattern == PatternType::kRRGapOne ? 2 : 1;
    const Cell dep0{start(rng), start(rng)};
    const Offset step = p.axis == Axis::kColumn ? Offset{0, stride}
                                                : Offset{stride, 0};

    // Window geometry. Offsets are chosen small and negative-leaning so
    // windows stay on-sheet.
    Offset h_rel{-2 - small(rng), -2 - small(rng)};
    Offset t_rel{h_rel.dcol + small(rng), h_rel.drow + small(rng)};
    if (p.pattern == PatternType::kRRChain) {
      h_rel = p.axis == Axis::kColumn ? Offset{0, -1} : Offset{-1, 0};
      t_rel = h_rel;
    }
    const Cell h_fix = dep0 + Offset{-8, -8};
    const Cell t_fix = dep0 + Offset{-2, -2} +
                       Offset{small(rng), small(rng)} +
                       (p.axis == Axis::kColumn
                            ? Offset{0, (len - 1) * stride}
                            : Offset{(len - 1) * stride, 0});

    std::vector<Dependency> deps;
    for (int32_t i = 0; i < len; ++i) {
      Cell dep_cell = dep0;
      for (int32_t k = 0; k < i; ++k) dep_cell = dep_cell + step;
      Range window;
      switch (p.pattern) {
        case PatternType::kRR:
        case PatternType::kRRChain:
        case PatternType::kRRGapOne:
          window = Range(dep_cell + h_rel, dep_cell + t_rel);
          break;
        case PatternType::kRF:
          window = Range(dep_cell + h_rel, t_fix);
          break;
        case PatternType::kFR:
          window = Range(h_fix, dep_cell + t_rel);
          break;
        case PatternType::kFF:
          window = Range(h_fix, t_fix);
          break;
        case PatternType::kSingle:
          break;
      }
      EXPECT_TRUE(window.IsValid())
          << window.ToString() << " for dep " << dep_cell.ToString();
      deps.push_back(Dep(window, dep_cell));
    }
    *deps_out = deps;
    return BuildEdge(p.pattern, deps, p.axis);
  }
};

TEST_P(PatternPropertyTest, ReconstructionIsLossless) {
  std::mt19937 rng(GetParam().seed);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Dependency> deps;
    CompressedEdge edge = RandomEdge(rng, &deps);
    ASSERT_EQ(edge.compressed_count, deps.size());

    auto reconstructed = ReconstructDependencies(edge);
    ASSERT_EQ(reconstructed.size(), deps.size());
    for (size_t i = 0; i < deps.size(); ++i) {
      // Reconstruction order follows dep-cell order; match by dep cell.
      auto it = std::find_if(reconstructed.begin(), reconstructed.end(),
                             [&](const Dependency& d) {
                               return d.dep == deps[i].dep;
                             });
      ASSERT_NE(it, reconstructed.end());
      EXPECT_EQ(it->prec, deps[i].prec) << "dep " << deps[i].dep.ToString();
    }
  }
}

TEST_P(PatternPropertyTest, FindDepMatchesWindowEnumeration) {
  std::mt19937 rng(GetParam().seed ^ 0xABCD);
  const bool transitive = GetParam().pattern == PatternType::kRRChain;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Dependency> deps;
    CompressedEdge edge = RandomEdge(rng, &deps);

    // Query rectangles around (and beyond) the precedent bounding box.
    std::uniform_int_distribution<int32_t> jitter(-6, 6);
    Cell q1{edge.prec.head.col + jitter(rng), edge.prec.head.row + jitter(rng)};
    Cell q2{q1.col + std::abs(jitter(rng)), q1.row + std::abs(jitter(rng))};
    q1 = CellMax(q1, Cell{1, 1});
    q2 = CellMax(q2, q1);
    Range query(q1, q2);

    std::vector<Range> got;
    FindDepOnEdge(edge, query, &got);
    CellSet got_cells = ToCellSet(got);

    CellSet expected = transitive
                           ? test::BruteForceDependents(deps, query)
                           : ToCellSet(DirectDependents(edge, query));
    EXPECT_EQ(got_cells, expected)
        << edge.ToString() << " query " << query.ToString();
  }
}

TEST_P(PatternPropertyTest, FindPrecMatchesWindowEnumeration) {
  std::mt19937 rng(GetParam().seed ^ 0x1234);
  const bool transitive = GetParam().pattern == PatternType::kRRChain;
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Dependency> deps;
    CompressedEdge edge = RandomEdge(rng, &deps);

    std::uniform_int_distribution<int32_t> jitter(-4, 4);
    Cell q1{edge.dep.head.col + jitter(rng), edge.dep.head.row + jitter(rng)};
    Cell q2{q1.col + std::abs(jitter(rng)), q1.row + std::abs(jitter(rng))};
    q1 = CellMax(q1, Cell{1, 1});
    q2 = CellMax(q2, q1);
    Range query(q1, q2);

    std::vector<Range> got;
    FindPrecOnEdge(edge, query, &got);
    CellSet got_cells = ToCellSet(got);

    CellSet expected;
    if (transitive) {
      expected = test::BruteForcePrecedents(deps, query);
    } else {
      for (const Dependency& d : deps) {
        if (!query.Contains(d.dep)) continue;
        for (const Cell& c : EnumerateCells(d.prec)) {
          expected.insert({c.col, c.row});
        }
      }
    }
    EXPECT_EQ(got_cells, expected)
        << edge.ToString() << " query " << query.ToString();
  }
}

TEST_P(PatternPropertyTest, RemoveDepPreservesSurvivingDependencies) {
  std::mt19937 rng(GetParam().seed ^ 0x9999);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<Dependency> deps;
    CompressedEdge edge = RandomEdge(rng, &deps);

    // Remove a random band of formula cells crossing the dependent line.
    std::uniform_int_distribution<int32_t> jitter(-3, 3);
    Cell q1{edge.dep.head.col + jitter(rng), edge.dep.head.row + jitter(rng)};
    Cell q2{q1.col + std::abs(jitter(rng)), q1.row + std::abs(jitter(rng))};
    q1 = CellMax(q1, Cell{1, 1});
    q2 = CellMax(q2, q1);
    Range removed(q1, q2);

    std::vector<CompressedEdge> out;
    RemoveDepOnEdge(edge, removed, &out);

    // The union of reconstructed dependencies of the outputs must equal
    // the survivors.
    std::vector<Dependency> survivors;
    for (const Dependency& d : deps) {
      if (!removed.Contains(d.dep)) survivors.push_back(d);
    }
    std::vector<Dependency> remaining;
    for (const CompressedEdge& piece : out) {
      auto part = ReconstructDependencies(piece);
      remaining.insert(remaining.end(), part.begin(), part.end());
    }
    auto key = [](const Dependency& d) {
      return std::tuple(d.dep.col, d.dep.row, d.prec.head.col, d.prec.head.row,
                        d.prec.tail.col, d.prec.tail.row);
    };
    auto cmp = [&](const Dependency& a, const Dependency& b) {
      return key(a) < key(b);
    };
    std::sort(survivors.begin(), survivors.end(), cmp);
    std::sort(remaining.begin(), remaining.end(), cmp);
    ASSERT_EQ(remaining.size(), survivors.size())
        << edge.ToString() << " removed " << removed.ToString();
    for (size_t i = 0; i < survivors.size(); ++i) {
      EXPECT_EQ(key(remaining[i]), key(survivors[i]));
    }
    // Demotion invariant: single-dependency outputs are Single edges.
    for (const CompressedEdge& piece : out) {
      if (piece.compressed_count == 1) {
        EXPECT_EQ(piece.pattern, PatternType::kSingle);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPatterns, PatternPropertyTest,
    ::testing::Values(
        PropertyParam{PatternType::kRR, Axis::kColumn, 1},
        PropertyParam{PatternType::kRR, Axis::kRow, 2},
        PropertyParam{PatternType::kRF, Axis::kColumn, 3},
        PropertyParam{PatternType::kRF, Axis::kRow, 4},
        PropertyParam{PatternType::kFR, Axis::kColumn, 5},
        PropertyParam{PatternType::kFR, Axis::kRow, 6},
        PropertyParam{PatternType::kFF, Axis::kColumn, 7},
        PropertyParam{PatternType::kFF, Axis::kRow, 8},
        PropertyParam{PatternType::kRRChain, Axis::kColumn, 9},
        PropertyParam{PatternType::kRRChain, Axis::kRow, 10},
        PropertyParam{PatternType::kRRGapOne, Axis::kColumn, 11},
        PropertyParam{PatternType::kRRGapOne, Axis::kRow, 12}),
    ParamName);

}  // namespace
}  // namespace taco
