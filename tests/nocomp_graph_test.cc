// Tests for the NoComp baseline graph: the paper's Fig. 3 example,
// maintenance semantics, and randomized differential tests against the
// brute-force cell-level oracle.

#include <gtest/gtest.h>

#include "common/range_set.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "sheet/sheet.h"

namespace taco {
namespace {

using test::BruteForceDependents;
using test::BruteForcePrecedents;
using test::CellSet;
using test::RandomAcyclicDependencies;
using test::ToCellSet;

// Builds the paper's Fig. 3 spreadsheet:
//   B1 = SUM(A1:A3), B2 = SUM(A1:A3), C1 = B1+B3, C2 = AVG(B2:B3).
Sheet Fig3Sheet() {
  Sheet sheet;
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 1}, 1).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 2}, 2).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 3}, 3).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{2, 3}, 4).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{2, 1}, "SUM(A1:A3)").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{2, 2}, "SUM(A1:A3)").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{3, 1}, "B1+B3").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{3, 2}, "AVG(B2:B3)").ok());
  return sheet;
}

TEST(CollectDependenciesTest, Fig3) {
  Sheet sheet = Fig3Sheet();
  std::vector<Dependency> deps = CollectDependencies(sheet);
  // B1, B2 each contribute one range; C1 two cells; C2 one range.
  ASSERT_EQ(deps.size(), 5u);
  // Column-major order: B1's and B2's dependencies come before C1's/C2's.
  EXPECT_EQ(deps[0].dep, (Cell{2, 1}));
  EXPECT_EQ(deps[0].prec, Range(1, 1, 1, 3));
  EXPECT_EQ(deps[1].dep, (Cell{2, 2}));
  EXPECT_EQ(deps[2].dep, (Cell{3, 1}));
  EXPECT_EQ(deps[3].dep, (Cell{3, 1}));
  EXPECT_EQ(deps[4].dep, (Cell{3, 2}));
  EXPECT_EQ(deps[4].prec, Range(2, 2, 2, 3));
}

TEST(NoCompGraphTest, Fig3GraphShape) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  // Vertices: A1:A3, B1, B2, B3, B2:B3, C1, C2 (Fig. 3 shows exactly these).
  EXPECT_EQ(graph.NumVertices(), 7u);
  EXPECT_EQ(graph.NumEdges(), 5u);
}

TEST(NoCompGraphTest, Fig3DependentsOfA1) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  // The paper: dependents of A1 are {B1, B2, C1, C2}.
  auto result = graph.FindDependents(Range(Cell{1, 1}));
  EXPECT_EQ(ToCellSet(result),
            (CellSet{{2, 1}, {2, 2}, {3, 1}, {3, 2}}));
}

TEST(NoCompGraphTest, Fig3DependentsOfB3) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  // B3 is referenced by C1 directly and by C2 through B2:B3.
  auto result = graph.FindDependents(Range(Cell{2, 3}));
  EXPECT_EQ(ToCellSet(result), (CellSet{{3, 1}, {3, 2}}));
}

TEST(NoCompGraphTest, Fig3PrecedentsOfC1) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  // C1 = B1+B3; B1 = SUM(A1:A3) -> {B1, B3, A1, A2, A3}.
  auto result = graph.FindPrecedents(Range(Cell{3, 1}));
  EXPECT_EQ(ToCellSet(result),
            (CellSet{{2, 1}, {2, 3}, {1, 1}, {1, 2}, {1, 3}}));
}

TEST(NoCompGraphTest, Fig3PrecedentsOfC2) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  auto result = graph.FindPrecedents(Range(Cell{3, 2}));
  // C2 = AVG(B2:B3); B2 = SUM(A1:A3).
  EXPECT_EQ(ToCellSet(result),
            (CellSet{{2, 2}, {2, 3}, {1, 1}, {1, 2}, {1, 3}}));
}

TEST(NoCompGraphTest, QueryOnEmptyGraph) {
  NoCompGraph graph;
  EXPECT_TRUE(graph.FindDependents(Range(Cell{1, 1})).empty());
  EXPECT_TRUE(graph.FindPrecedents(Range(Cell{1, 1})).empty());
}

TEST(NoCompGraphTest, QueryRangeInput) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  // A whole-column input range.
  auto result = graph.FindDependents(Range(1, 1, 1, 1000));
  EXPECT_EQ(ToCellSet(result),
            (CellSet{{2, 1}, {2, 2}, {3, 1}, {3, 2}}));
}

TEST(NoCompGraphTest, RemoveFormulaCells) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());

  // Clearing column B's formulas removes A1:A3 -> B1/B2 edges only.
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(2, 1, 2, 2)).ok());
  EXPECT_EQ(graph.NumEdges(), 3u);
  // A1 now has no dependents; the A1:A3 vertex is gone.
  EXPECT_TRUE(graph.FindDependents(Range(Cell{1, 1})).empty());
  // B1 is still referenced by C1 (the location still exists).
  auto result = graph.FindDependents(Range(Cell{2, 1}));
  EXPECT_EQ(ToCellSet(result), (CellSet{{3, 1}}));
}

TEST(NoCompGraphTest, RemoveThenReinsert) {
  NoCompGraph graph;
  Dependency dep;
  dep.prec = Range(1, 1, 1, 3);
  dep.dep = Cell{2, 1};
  ASSERT_TRUE(graph.AddDependency(dep).ok());
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(Cell{2, 1})).ok());
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_EQ(graph.NumVertices(), 0u);
  // Reinsert after full removal.
  ASSERT_TRUE(graph.AddDependency(dep).ok());
  EXPECT_EQ(graph.NumEdges(), 1u);
  auto result = graph.FindDependents(Range(Cell{1, 2}));
  EXPECT_EQ(ToCellSet(result), (CellSet{{2, 1}}));
}

TEST(NoCompGraphTest, RemoveIgnoresPrecedentOnlyVertices) {
  NoCompGraph graph;
  Dependency dep;
  dep.prec = Range(1, 1, 1, 3);
  dep.dep = Cell{2, 1};
  ASSERT_TRUE(graph.AddDependency(dep).ok());
  // Clearing the referenced column must not remove the edge.
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(1, 1, 1, 3)).ok());
  EXPECT_EQ(graph.NumEdges(), 1u);
}

TEST(NoCompGraphTest, InvalidInputsRejected) {
  NoCompGraph graph;
  Dependency bad;
  bad.prec = Range(2, 2, 1, 1);  // reversed corners
  bad.dep = Cell{1, 1};
  EXPECT_FALSE(graph.AddDependency(bad).ok());
  EXPECT_FALSE(graph.RemoveFormulaCells(Range(2, 2, 1, 1)).ok());
}

TEST(NoCompGraphTest, CountersPopulated) {
  Sheet sheet = Fig3Sheet();
  NoCompGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  (void)graph.FindDependents(Range(Cell{1, 1}));
  EXPECT_GT(graph.last_query_counters().edge_accesses, 0u);
  EXPECT_GT(graph.last_query_counters().vertex_visits, 0u);
  EXPECT_EQ(graph.last_query_counters().result_ranges, 4u);
}

// Long dependency chain: A1 <- A2 <- ... <- A200.
TEST(NoCompGraphTest, LongChain) {
  NoCompGraph graph;
  for (int row = 2; row <= 200; ++row) {
    Dependency dep;
    dep.prec = Range(Cell{1, row - 1});
    dep.dep = Cell{1, row};
    ASSERT_TRUE(graph.AddDependency(dep).ok());
  }
  auto deps = graph.FindDependents(Range(Cell{1, 1}));
  EXPECT_EQ(CoveredCellCount(deps), 199u);
  auto precs = graph.FindPrecedents(Range(Cell{1, 200}));
  EXPECT_EQ(CoveredCellCount(precs), 199u);
}

// Large fan-out: one cell referenced by N formulas.
TEST(NoCompGraphTest, WideFanOut) {
  NoCompGraph graph;
  for (int row = 1; row <= 300; ++row) {
    Dependency dep;
    dep.prec = Range(Cell{1, 1});
    dep.dep = Cell{2, row};
    ASSERT_TRUE(graph.AddDependency(dep).ok());
  }
  auto deps = graph.FindDependents(Range(Cell{1, 1}));
  EXPECT_EQ(CoveredCellCount(deps), 300u);
}

// ---------------------------------------------------------------------------
// Randomized differential testing against the brute-force oracle.

class NoCompRandomizedTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(NoCompRandomizedTest, MatchesOracle) {
  auto deps = RandomAcyclicDependencies(GetParam(), 60);
  NoCompGraph graph;
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(graph.AddDependency(dep).ok());
  }
  std::mt19937 rng(GetParam() ^ 0x5555);
  std::uniform_int_distribution<int32_t> col(1, 8);
  std::uniform_int_distribution<int32_t> row(1, 30);
  for (int trial = 0; trial < 25; ++trial) {
    Cell c{col(rng), row(rng)};
    Range input = trial % 3 == 0 ? Range(c.col, c.row, c.col,
                                         std::min(c.row + 3, 30))
                                 : Range(c);
    EXPECT_EQ(ToCellSet(graph.FindDependents(input)),
              BruteForceDependents(deps, input))
        << "dependents of " << input.ToString();
    EXPECT_EQ(ToCellSet(graph.FindPrecedents(input)),
              BruteForcePrecedents(deps, input))
        << "precedents of " << input.ToString();
  }
}

TEST_P(NoCompRandomizedTest, RemovalKeepsOracleAgreement) {
  auto deps = RandomAcyclicDependencies(GetParam() + 1000, 50);
  NoCompGraph graph;
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(graph.AddDependency(dep).ok());
  }
  // Clear a band of formula cells and mirror in the oracle list.
  Range cleared(1, 10, 8, 15);
  ASSERT_TRUE(graph.RemoveFormulaCells(cleared).ok());
  std::vector<Dependency> remaining;
  for (const Dependency& dep : deps) {
    if (!cleared.Contains(dep.dep)) remaining.push_back(dep);
  }

  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int32_t> col(1, 8);
  std::uniform_int_distribution<int32_t> row(1, 30);
  for (int trial = 0; trial < 15; ++trial) {
    Range input(Cell{col(rng), row(rng)});
    EXPECT_EQ(ToCellSet(graph.FindDependents(input)),
              BruteForceDependents(remaining, input));
    EXPECT_EQ(ToCellSet(graph.FindPrecedents(input)),
              BruteForcePrecedents(remaining, input));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoCompRandomizedTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

}  // namespace
}  // namespace taco
