// Shared test helpers: brute-force cell-level oracles for dependent /
// precedent queries, and random dependency workload generators. Used to
// differentially test NoComp, TACO, and the baseline graphs.

#ifndef TACO_TESTS_GRAPH_TEST_UTIL_H_
#define TACO_TESTS_GRAPH_TEST_UTIL_H_

#include <deque>
#include <random>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "common/cell.h"
#include "common/range.h"
#include "graph/dependency.h"

namespace taco::test {

using CellSet = std::set<std::pair<int32_t, int32_t>>;

inline CellSet ToCellSet(std::span<const Range> ranges) {
  CellSet out;
  for (const Range& r : ranges) {
    for (const Cell& c : EnumerateCells(r)) out.insert({c.col, c.row});
  }
  return out;
}

/// Brute-force transitive dependents of `input`: formula cells whose
/// reference chain touches `input`. Cell-level BFS; intended for small
/// workloads only.
inline CellSet BruteForceDependents(std::span<const Dependency> deps,
                                    const Range& input) {
  CellSet result;
  std::deque<Range> frontier{input};
  while (!frontier.empty()) {
    Range current = frontier.front();
    frontier.pop_front();
    for (const Dependency& dep : deps) {
      if (!dep.prec.Overlaps(current)) continue;
      auto key = std::make_pair(dep.dep.col, dep.dep.row);
      if (result.insert(key).second) {
        frontier.push_back(Range(dep.dep));
      }
    }
  }
  return result;
}

/// Brute-force transitive precedents of `input`: every cell of every range
/// reachable backwards through formula references from `input`.
inline CellSet BruteForcePrecedents(std::span<const Dependency> deps,
                                    const Range& input) {
  CellSet result;
  std::deque<Range> frontier{input};
  // Track visited precedent ranges to terminate on diamond shapes.
  std::set<std::pair<std::pair<int32_t, int32_t>, std::pair<int32_t, int32_t>>>
      visited_ranges;
  while (!frontier.empty()) {
    Range current = frontier.front();
    frontier.pop_front();
    for (const Dependency& dep : deps) {
      if (!current.Contains(dep.dep)) continue;
      auto key = std::make_pair(
          std::make_pair(dep.prec.head.col, dep.prec.head.row),
          std::make_pair(dep.prec.tail.col, dep.prec.tail.row));
      if (!visited_ranges.insert(key).second) continue;
      for (const Cell& c : EnumerateCells(dep.prec)) {
        result.insert({c.col, c.row});
      }
      frontier.push_back(dep.prec);
    }
  }
  return result;
}

/// Random acyclic dependency workload: formula cells reference ranges
/// strictly above them (smaller rows), guaranteeing a DAG. Mimics the
/// shape of real sheets (columns of formulas over data regions).
inline std::vector<Dependency> RandomAcyclicDependencies(uint32_t seed,
                                                         int n_deps,
                                                         int max_col = 8,
                                                         int max_row = 30) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int32_t> col(1, max_col);
  std::uniform_int_distribution<int32_t> width(0, 2);
  std::vector<Dependency> deps;
  std::set<std::pair<std::pair<int32_t, int32_t>, std::pair<int32_t, int32_t>>>
      used;  // (prec, dep) pairs, to avoid parallel edges
  while (static_cast<int>(deps.size()) < n_deps) {
    std::uniform_int_distribution<int32_t> dep_row(2, max_row);
    Cell dep_cell{col(rng), dep_row(rng)};
    std::uniform_int_distribution<int32_t> prec_row(1, dep_cell.row - 1);
    int32_t r1 = prec_row(rng);
    int32_t r2 = std::min<int32_t>(r1 + width(rng), dep_cell.row - 1);
    int32_t c1 = col(rng);
    int32_t c2 = std::min<int32_t>(c1 + width(rng), max_col);
    Dependency dep;
    dep.prec = Range(c1, r1, c2, r2);
    dep.dep = dep_cell;
    auto key = std::make_pair(std::make_pair(c1 * 100000 + r1, c2 * 100000 + r2),
                              std::make_pair(dep_cell.col, dep_cell.row));
    if (!used.insert(key).second) continue;
    deps.push_back(dep);
  }
  return deps;
}

}  // namespace taco::test

#endif  // TACO_TESTS_GRAPH_TEST_UTIL_H_
