// Shared test helpers: brute-force cell-level oracles for dependent /
// precedent queries, random dependency workload generators, and the
// differential equivalence harness that runs any DependencyGraph
// implementation against the oracle on identical randomized
// insert/query/remove workloads. Used to differentially test NoComp,
// TACO, and the baseline graphs.

#ifndef TACO_TESTS_GRAPH_TEST_UTIL_H_
#define TACO_TESTS_GRAPH_TEST_UTIL_H_

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <random>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/cell.h"
#include "common/range.h"
#include "eval/recalc.h"
#include "graph/dependency.h"
#include "graph/dependency_graph.h"
#include "taco/taco_graph.h"

namespace taco::test {

/// TACO_FUZZ_TRIALS scaling shared by the randomized suites: tier-1
/// runs use the bounded deterministic default; the knob is a multiplier
/// denominator of 100 (TACO_FUZZ_TRIALS=1000 runs 10x the default
/// iterations) for longer local fuzzing/soak sessions.
inline int FuzzTrials(int tier1_default) {
  if (const char* env = std::getenv("TACO_FUZZ_TRIALS")) {
    long scale = std::strtol(env, nullptr, 10);
    if (scale > 0) {
      // Clamp before multiplying so absurd knob values saturate instead
      // of overflowing (which would wrap negative and run zero trials).
      int64_t capped = std::min<int64_t>(
          scale,
          int64_t{std::numeric_limits<int>::max()} * 100 / tier1_default);
      int64_t n = static_cast<int64_t>(tier1_default) * capped / 100;
      return static_cast<int>(std::max<int64_t>(
          std::min<int64_t>(n, std::numeric_limits<int>::max()), 1));
    }
  }
  return tier1_default;
}

/// Raw-dependency accessors for DifferentialConfig::raw_deps (below).
/// These encode each representation's contract for "dependencies
/// represented", shared by every differential suite.
inline std::optional<uint64_t> TacoRawDeps(const DependencyGraph& g) {
  return static_cast<const TacoGraph&>(g).NumRawDependencies();
}

/// Uncompressed graphs store one edge per dependency, so NumEdges *is*
/// the raw-dependency count.
inline std::optional<uint64_t> EdgesAreRawDeps(const DependencyGraph& g) {
  return g.NumEdges();
}

using CellSet = std::set<std::pair<int32_t, int32_t>>;

inline CellSet ToCellSet(std::span<const Range> ranges) {
  CellSet out;
  for (const Range& r : ranges) {
    for (const Cell& c : EnumerateCells(r)) out.insert({c.col, c.row});
  }
  return out;
}

/// Brute-force transitive dependents of `input`: formula cells whose
/// reference chain touches `input`. Cell-level BFS; intended for small
/// workloads only.
inline CellSet BruteForceDependents(std::span<const Dependency> deps,
                                    const Range& input) {
  CellSet result;
  std::deque<Range> frontier{input};
  while (!frontier.empty()) {
    Range current = frontier.front();
    frontier.pop_front();
    for (const Dependency& dep : deps) {
      if (!dep.prec.Overlaps(current)) continue;
      auto key = std::make_pair(dep.dep.col, dep.dep.row);
      if (result.insert(key).second) {
        frontier.push_back(Range(dep.dep));
      }
    }
  }
  return result;
}

/// Brute-force transitive precedents of `input`: every cell of every range
/// reachable backwards through formula references from `input`.
inline CellSet BruteForcePrecedents(std::span<const Dependency> deps,
                                    const Range& input) {
  CellSet result;
  std::deque<Range> frontier{input};
  // Track visited precedent ranges to terminate on diamond shapes.
  std::set<std::pair<std::pair<int32_t, int32_t>, std::pair<int32_t, int32_t>>>
      visited_ranges;
  while (!frontier.empty()) {
    Range current = frontier.front();
    frontier.pop_front();
    for (const Dependency& dep : deps) {
      if (!current.Contains(dep.dep)) continue;
      auto key = std::make_pair(
          std::make_pair(dep.prec.head.col, dep.prec.head.row),
          std::make_pair(dep.prec.tail.col, dep.prec.tail.row));
      if (!visited_ranges.insert(key).second) continue;
      for (const Cell& c : EnumerateCells(dep.prec)) {
        result.insert({c.col, c.row});
      }
      frontier.push_back(dep.prec);
    }
  }
  return result;
}

/// Random acyclic dependency workload: formula cells reference ranges
/// strictly above them (smaller rows), guaranteeing a DAG. Mimics the
/// shape of real sheets (columns of formulas over data regions).
/// Implemented on WorkloadGenerator (below) so there is exactly one
/// generator to evolve.
std::vector<Dependency> RandomAcyclicDependencies(uint32_t seed, int n_deps,
                                                  int max_col = 8,
                                                  int max_row = 30);

/// True iff every cell of `subset` also appears in `superset`.
inline bool IsCellSubset(const CellSet& subset, const CellSet& superset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

/// Incremental random workload source for the differential harness: emits
/// fresh acyclic dependencies (never a duplicate (prec, dep) pair, so the
/// deduplicated-stream contract of AddDependency holds across rounds),
/// plus query ranges and removal bands over the same sheet region.
class WorkloadGenerator {
 public:
  WorkloadGenerator(uint32_t seed, int max_col = 8, int max_row = 30)
      : rng_(seed), max_col_(max_col), max_row_(max_row) {}

  /// Next fresh dependency: a formula cell referencing a small range
  /// strictly above it (rows < dep row), guaranteeing the stream stays a
  /// DAG no matter how inserts interleave with removals.
  Dependency Next() {
    std::uniform_int_distribution<int32_t> col(1, max_col_);
    std::uniform_int_distribution<int32_t> dep_row(2, max_row_);
    std::uniform_int_distribution<int32_t> width(0, 2);
    // Bounded retries: a workload that asks for more unique (prec, dep)
    // pairs than the region admits must fail loudly, not hang.
    for (int attempt = 0; attempt < 1000000; ++attempt) {
      Cell dep_cell{col(rng_), dep_row(rng_)};
      std::uniform_int_distribution<int32_t> prec_row(1, dep_cell.row - 1);
      int32_t r1 = prec_row(rng_);
      int32_t r2 = std::min<int32_t>(r1 + width(rng_), dep_cell.row - 1);
      int32_t c1 = col(rng_);
      int32_t c2 = std::min<int32_t>(c1 + width(rng_), max_col_);
      auto key =
          std::make_pair(std::make_pair(c1 * 100000 + r1, c2 * 100000 + r2),
                         std::make_pair(dep_cell.col, dep_cell.row));
      if (!used_.insert(key).second) continue;
      Dependency dep;
      dep.prec = Range(c1, r1, c2, r2);
      dep.dep = dep_cell;
      return dep;
    }
    ADD_FAILURE() << "WorkloadGenerator exhausted the unique-dependency "
                     "space of the " << max_col_ << "x" << max_row_
                  << " region; shrink the workload or grow the region";
    return Dependency{};
  }

  /// Query probe: mostly single cells, sometimes a short vertical span
  /// (both shapes appear in the paper's workloads).
  Range NextQuery() {
    std::uniform_int_distribution<int32_t> col(1, max_col_);
    std::uniform_int_distribution<int32_t> row(1, max_row_);
    Cell c{col(rng_), row(rng_)};
    if (std::uniform_int_distribution<int>(0, 2)(rng_) == 0) {
      return Range(c.col, c.row, c.col, std::min<int32_t>(c.row + 3, max_row_));
    }
    return Range(c);
  }

  /// Removal band: a horizontal slab of formula cells to clear.
  Range NextRemovalBand() {
    std::uniform_int_distribution<int32_t> row(1, max_row_);
    std::uniform_int_distribution<int32_t> height(0, 3);
    int32_t r1 = row(rng_);
    int32_t r2 = std::min<int32_t>(r1 + height(rng_), max_row_);
    return Range(1, r1, max_col_, r2);
  }

  // --- Protocol-script mode -----------------------------------------
  //
  // The same randomized workload rendered as text-protocol traffic: each
  // step carries its wire command AND the equivalent Edits, so a soak
  // test can replay one script through a serial-oracle WorkbookSession
  // (applying the Edits directly) and through a transport (sending the
  // commands) and assert cell-for-cell equality. Formulas reference only
  // rows strictly above their own, so scripts stay acyclic and
  // evaluation results are order-independent across transports.

  /// One random edit: the Edit for the oracle plus its sessionless wire
  /// form ("SET B3 42" — the shape BATCH body lines use). The
  /// session-addressed form inserts the session after the first word.
  struct WireEdit {
    Edit edit;
    std::string op;    ///< "SET" / "FORMULA" / "CLEAR".
    std::string args;  ///< Everything after the op (and session) words.

    std::string BatchLine() const { return op + " " + args; }
    std::string Command(const std::string& session) const {
      return op + " " + session + " " + args;
    }
  };

  WireEdit NextProtocolEdit() {
    std::uniform_int_distribution<int> pick(0, 9);
    int kind = pick(rng_);
    if (kind < 5) {  // Literal SET; integer values survive the text
                     // round trip bit-exactly.
      std::uniform_int_distribution<int32_t> col(1, max_col_);
      std::uniform_int_distribution<int32_t> row(1, max_row_);
      std::uniform_int_distribution<int> value(-999, 999);
      Cell cell{col(rng_), row(rng_)};
      int v = value(rng_);
      return {Edit::SetNumber(cell, v), "SET",
              cell.ToString() + " " + std::to_string(v)};
    }
    if (kind < 8) {  // Formula over a fresh strictly-above dependency.
      Dependency dep = Next();
      std::string src =
          "SUM(" + dep.prec.ToString() + ")+" + std::to_string(dep.dep.row);
      return {Edit::SetFormula(dep.dep, src), "FORMULA",
              dep.dep.ToString() + " " + src};
    }
    Range band = NextRemovalBand();
    return {Edit::ClearRange(band), "CLEAR", band.ToString()};
  }

  /// One step of a protocol script for `session`: a GET probe (no
  /// edits), a single session-addressed edit, or a BATCH of several.
  struct ProtocolStep {
    std::string command;      ///< Complete wire command (multi-line BATCH).
    std::vector<Edit> edits;  ///< Oracle equivalent; empty for GET.
  };

  ProtocolStep NextProtocolStep(const std::string& session) {
    std::uniform_int_distribution<int> pick(0, 9);
    int kind = pick(rng_);
    if (kind < 2) {
      std::uniform_int_distribution<int32_t> col(1, max_col_);
      std::uniform_int_distribution<int32_t> row(1, max_row_);
      Cell cell{col(rng_), row(rng_)};
      return {"GET " + session + " " + cell.ToString(), {}};
    }
    if (kind < 8) {
      WireEdit edit = NextProtocolEdit();
      return {edit.Command(session), {edit.edit}};
    }
    std::uniform_int_distribution<int> size(2, 5);
    int n = size(rng_);
    ProtocolStep step;
    step.command = "BATCH " + session + " " + std::to_string(n);
    for (int i = 0; i < n; ++i) {
      WireEdit edit = NextProtocolEdit();
      step.command += "\n" + edit.BatchLine();
      step.edits.push_back(std::move(edit.edit));
    }
    return step;
  }

 private:
  std::mt19937 rng_;
  int max_col_;
  int max_row_;
  std::set<std::pair<std::pair<int32_t, int32_t>, std::pair<int32_t, int32_t>>>
      used_;
};

inline std::vector<Dependency> RandomAcyclicDependencies(uint32_t seed,
                                                         int n_deps,
                                                         int max_col,
                                                         int max_row) {
  WorkloadGenerator gen(seed, max_col, max_row);
  std::vector<Dependency> deps;
  deps.reserve(n_deps);
  for (int i = 0; i < n_deps; ++i) deps.push_back(gen.Next());
  return deps;
}

/// Differential equivalence harness (the losslessness contract of
/// Sec. II-B as an executable check). Drives one DependencyGraph and the
/// brute-force oracle through an identical randomized workload of
/// interleaved inserts, formula-cell removals, and dependent/precedent
/// queries, asserting agreement after every phase.
struct DifferentialConfig {
  int initial_inserts = 50;     ///< Dependencies inserted before round 1.
  int rounds = 4;               ///< Mutate+query rounds.
  int inserts_per_round = 12;   ///< Fresh dependencies added each round.
  int queries_per_round = 12;   ///< Probe queries checked each round.
  bool removals = true;         ///< Clear a random formula band per round.
  int max_col = 8;              ///< Sheet width of the workload region.
  int max_row = 30;             ///< Sheet height of the workload region.

  /// Exact equality for FindDependents. Antifreeze compresses dependent
  /// sets into bounding ranges and may over-approximate, so it is checked
  /// for superset-containment instead (false positives allowed, false
  /// negatives never).
  bool exact_dependents = true;

  /// Returns the number of raw dependencies `graph` currently represents,
  /// or nullopt when the representation does not expose one (CellGraph's
  /// decomposed edges). When set, the harness cross-checks it — and
  /// NumEdges, which can never exceed it for a lossless compressed
  /// representation — against the oracle's live-dependency count.
  std::function<std::optional<uint64_t>(const DependencyGraph&)> raw_deps;

  /// Expected NumEdges as a deterministic function of the live dependency
  /// list, for representations whose edge count is NOT the raw-dependency
  /// count — CellGraph stores one cell-to-cell edge per precedent cell
  /// (sum of prec areas). When set, the harness checks NumEdges against
  /// it after every phase.
  std::function<uint64_t(std::span<const Dependency>)> expected_edges;
};

/// Aggregate query-accuracy report of one differential run. Exact graphs
/// must come out with zero false positives; Antifreeze's documented
/// dependent over-approximation is quantified by `Precision()` — the
/// fraction of reported dependent cells the oracle confirms.
struct DifferentialReport {
  uint64_t dependent_queries = 0;
  uint64_t oracle_cells = 0;          ///< True dependent cells (oracle).
  uint64_t reported_cells = 0;        ///< Cells the graph reported.
  uint64_t false_positive_cells = 0;  ///< Reported but not true.

  double Precision() const {
    return reported_cells == 0
               ? 1.0
               : 1.0 - double(false_positive_cells) / double(reported_cells);
  }
};

inline void CheckQueriesAgainstOracle(DependencyGraph* graph,
                                      std::span<const Dependency> live,
                                      WorkloadGenerator* gen,
                                      const DifferentialConfig& config,
                                      int n_queries, const char* phase,
                                      DifferentialReport* report = nullptr) {
  for (int q = 0; q < n_queries; ++q) {
    Range input = gen->NextQuery();
    CellSet expected_deps = BruteForceDependents(live, input);
    CellSet actual_deps = ToCellSet(graph->FindDependents(input));
    if (report != nullptr) {
      ++report->dependent_queries;
      report->oracle_cells += expected_deps.size();
      report->reported_cells += actual_deps.size();
      for (const auto& cell : actual_deps) {
        if (!expected_deps.contains(cell)) ++report->false_positive_cells;
      }
    }
    if (config.exact_dependents) {
      EXPECT_EQ(actual_deps, expected_deps)
          << graph->Name() << " [" << phase << "] dependents of "
          << input.ToString();
    } else {
      EXPECT_TRUE(IsCellSubset(expected_deps, actual_deps))
          << graph->Name() << " [" << phase << "] lost dependents of "
          << input.ToString();
    }
    EXPECT_EQ(ToCellSet(graph->FindPrecedents(input)),
              BruteForcePrecedents(live, input))
        << graph->Name() << " [" << phase << "] precedents of "
        << input.ToString();
  }
}

inline void CheckEdgeAccounting(DependencyGraph* graph,
                                std::span<const Dependency> live,
                                const DifferentialConfig& config,
                                const char* phase) {
  if (!config.raw_deps) return;
  std::optional<uint64_t> raw = config.raw_deps(*graph);
  if (!raw.has_value()) return;
  EXPECT_EQ(*raw, live.size())
      << graph->Name() << " [" << phase << "] raw-dependency accounting";
  EXPECT_LE(graph->NumEdges(), *raw)
      << graph->Name() << " [" << phase
      << "] stores more edges than dependencies";
  if (live.empty()) {
    EXPECT_EQ(graph->NumEdges(), 0u)
        << graph->Name() << " [" << phase << "] edges left after full clear";
  }
}

/// Edge-count oracle for graphs whose NumEdges is a pure function of the
/// live dependencies (decomposed representations).
inline void CheckExpectedEdges(DependencyGraph* graph,
                               std::span<const Dependency> live,
                               const DifferentialConfig& config,
                               const char* phase) {
  if (!config.expected_edges) return;
  EXPECT_EQ(graph->NumEdges(), config.expected_edges(live))
      << graph->Name() << " [" << phase << "] decomposed-edge accounting";
}

/// CellGraph's representation contract: every dependency decomposes into
/// one cell-to-cell edge per precedent cell (Sec. VI-D), duplicates and
/// all, so the live edge count is the sum of precedent areas.
inline uint64_t DecomposedEdgeCount(std::span<const Dependency> live) {
  uint64_t total = 0;
  for (const Dependency& dep : live) total += dep.prec.Area();
  return total;
}

/// Drives the workload; when `report` is given, accumulates the
/// dependent-query accuracy aggregates into it (precision metric).
inline void RunDifferentialWorkload(DependencyGraph* graph, uint32_t seed,
                                    const DifferentialConfig& config = {},
                                    DifferentialReport* report = nullptr) {
  WorkloadGenerator gen(seed, config.max_col, config.max_row);
  std::vector<Dependency> live;

  auto insert = [&](int count) {
    for (int i = 0; i < count; ++i) {
      Dependency dep = gen.Next();
      ASSERT_TRUE(graph->AddDependency(dep).ok())
          << graph->Name() << " rejected " << dep.prec.ToString();
      live.push_back(dep);
    }
  };

  insert(config.initial_inserts);
  CheckEdgeAccounting(graph, live, config, "build");
  CheckExpectedEdges(graph, live, config, "build");
  CheckQueriesAgainstOracle(graph, live, &gen, config,
                            config.queries_per_round, "build", report);

  for (int round = 0; round < config.rounds; ++round) {
    insert(config.inserts_per_round);
    if (config.removals) {
      Range band = gen.NextRemovalBand();
      ASSERT_TRUE(graph->RemoveFormulaCells(band).ok())
          << graph->Name() << " failed to clear " << band.ToString();
      std::erase_if(live, [&](const Dependency& dep) {
        return band.Contains(dep.dep);
      });
    }
    CheckEdgeAccounting(graph, live, config, "round");
    CheckExpectedEdges(graph, live, config, "round");
    CheckQueriesAgainstOracle(graph, live, &gen, config,
                              config.queries_per_round, "round", report);
  }

  // Tear down to empty: clearing every formula cell must leave no edges
  // and queries must return nothing.
  ASSERT_TRUE(
      graph
          ->RemoveFormulaCells(Range(1, 1, config.max_col, config.max_row))
          .ok());
  live.clear();
  CheckEdgeAccounting(graph, live, config, "teardown");
  CheckExpectedEdges(graph, live, config, "teardown");
  CheckQueriesAgainstOracle(graph, live, &gen, config, 4, "teardown",
                            report);
}

}  // namespace taco::test

#endif  // TACO_TESTS_GRAPH_TEST_UTIL_H_
