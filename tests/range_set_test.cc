// Edge-case tests for the range-set helpers (common/range_set.h): empty
// inputs, duplicate and nested rectangles, adjacent-range behavior, and
// randomized agreement between DisjointifyRanges and a cell-level oracle.

#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/range_set.h"

namespace taco {
namespace {

using CellKey = std::pair<int32_t, int32_t>;

std::set<CellKey> Cells(std::span<const Range> ranges) {
  std::set<CellKey> out;
  for (const Range& r : ranges) {
    for (int32_t c = r.head.col; c <= r.tail.col; ++c) {
      for (int32_t w = r.head.row; w <= r.tail.row; ++w) out.insert({c, w});
    }
  }
  return out;
}

bool Disjoint(std::span<const Range> ranges) {
  for (size_t i = 0; i < ranges.size(); ++i) {
    for (size_t j = i + 1; j < ranges.size(); ++j) {
      if (ranges[i].Overlaps(ranges[j])) return false;
    }
  }
  return true;
}

TEST(RangeSetTest, EmptySet) {
  std::vector<Range> empty;
  EXPECT_TRUE(DisjointifyRanges(empty).empty());
  EXPECT_EQ(CoveredCellCount(empty), 0u);
  EXPECT_TRUE(SameCellSet(empty, empty));
  EXPECT_FALSE(CoversCell(empty, Cell{1, 1}));
}

TEST(RangeSetTest, EmptyVersusNonEmpty) {
  std::vector<Range> empty;
  std::vector<Range> one{Range(Cell{1, 1})};
  EXPECT_FALSE(SameCellSet(empty, one));
  EXPECT_FALSE(SameCellSet(one, empty));
}

TEST(RangeSetTest, SingleRangeIsIdentity) {
  std::vector<Range> in{Range(2, 3, 5, 9)};
  auto out = DisjointifyRanges(in);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], in[0]);
  EXPECT_EQ(CoveredCellCount(in), 4u * 7u);
}

TEST(RangeSetTest, ExactDuplicatesCollapse) {
  std::vector<Range> in{Range(1, 1, 2, 2), Range(1, 1, 2, 2),
                        Range(1, 1, 2, 2)};
  auto out = DisjointifyRanges(in);
  EXPECT_TRUE(Disjoint(out));
  EXPECT_EQ(CoveredCellCount(out), 4u);
  EXPECT_EQ(Cells(out), Cells(std::vector<Range>{Range(1, 1, 2, 2)}));
}

TEST(RangeSetTest, NestedRangeIsAbsorbed) {
  std::vector<Range> in{Range(1, 1, 6, 6), Range(2, 2, 4, 4)};
  auto out = DisjointifyRanges(in);
  EXPECT_TRUE(Disjoint(out));
  EXPECT_EQ(CoveredCellCount(out), 36u);
}

TEST(RangeSetTest, AdjacentRangesDoNotDoubleCount) {
  // A1:A3 and A4:A6 touch but do not overlap: 6 cells, fully disjoint
  // already, and the disjoint rewrite must preserve the exact cell set.
  std::vector<Range> in{Range(1, 1, 1, 3), Range(1, 4, 1, 6)};
  EXPECT_EQ(CoveredCellCount(in), 6u);
  auto out = DisjointifyRanges(in);
  EXPECT_TRUE(Disjoint(out));
  EXPECT_EQ(Cells(out), Cells(in));
  // Side-by-side columns (B and C) as well.
  std::vector<Range> cols{Range(2, 1, 2, 5), Range(3, 1, 3, 5)};
  EXPECT_EQ(CoveredCellCount(cols), 10u);
  EXPECT_TRUE(SameCellSet(cols, std::vector<Range>{Range(2, 1, 3, 5)}));
}

TEST(RangeSetTest, PartialOverlapCountsOnce) {
  std::vector<Range> in{Range(1, 1, 3, 3), Range(2, 2, 4, 4)};
  // 9 + 9 - 4 shared cells.
  EXPECT_EQ(CoveredCellCount(in), 14u);
  auto out = DisjointifyRanges(in);
  EXPECT_TRUE(Disjoint(out));
  EXPECT_EQ(Cells(out), Cells(in));
}

TEST(RangeSetTest, SameCellSetIgnoresDecomposition) {
  // One 2x2 block versus its four single cells, in scrambled order.
  std::vector<Range> block{Range(5, 5, 6, 6)};
  std::vector<Range> cells{Range(Cell{6, 6}), Range(Cell{5, 5}),
                           Range(Cell{6, 5}), Range(Cell{5, 6})};
  EXPECT_TRUE(SameCellSet(block, cells));
  cells.pop_back();
  EXPECT_FALSE(SameCellSet(block, cells));
}

TEST(RangeSetTest, CoversCellBoundaries) {
  std::vector<Range> in{Range(2, 2, 4, 4)};
  EXPECT_TRUE(CoversCell(in, Cell{2, 2}));
  EXPECT_TRUE(CoversCell(in, Cell{4, 4}));
  EXPECT_TRUE(CoversCell(in, Cell{3, 2}));
  EXPECT_FALSE(CoversCell(in, Cell{1, 2}));
  EXPECT_FALSE(CoversCell(in, Cell{5, 4}));
  EXPECT_FALSE(CoversCell(in, Cell{4, 5}));
}

TEST(RangeSetTest, RandomizedDisjointifyMatchesOracle) {
  std::mt19937 rng(4242);
  std::uniform_int_distribution<int32_t> coord(1, 12);
  std::uniform_int_distribution<int32_t> extent(0, 4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Range> in;
    int n = 1 + trial % 7;
    for (int i = 0; i < n; ++i) {
      int32_t c = coord(rng), r = coord(rng);
      in.push_back(Range(c, r, c + extent(rng), r + extent(rng)));
    }
    auto out = DisjointifyRanges(in);
    EXPECT_TRUE(Disjoint(out)) << "trial " << trial;
    EXPECT_EQ(Cells(out), Cells(in)) << "trial " << trial;
    EXPECT_EQ(CoveredCellCount(in), Cells(in).size()) << "trial " << trial;
    EXPECT_TRUE(SameCellSet(in, out)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace taco
