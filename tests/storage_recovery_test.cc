// Crash-recovery property tests over the full service path.
//
// The contract under test (ISSUE 5): every acknowledged Edit/EditBatch
// is WAL-logged before its response, so for ANY kill point in the log a
// reopened service recovers exactly the acknowledged prefix — cell for
// cell equal to a serial oracle that applied the same prefix — with torn
// final records truncated silently and corrupted interior records
// rejected with a status. Crashes are simulated by destroying the
// service (fds close, files stay) and truncating the WAL at randomized
// byte offsets, which is exactly the state a SIGKILL mid-append leaves
// behind on a POSIX filesystem.
//
// The randomized suites scale with TACO_FUZZ_TRIALS.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "graph_test_util.h"
#include "service/protocol.h"
#include "service/workbook_service.h"
#include "sheet/textio.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace taco {
namespace {

using test::FuzzTrials;

/// A per-test scratch directory, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& stem) {
    static int counter = 0;
    path_ = (std::filesystem::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()) + "." +
              std::to_string(counter++)))
                .string();
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string File(const std::string& name) const {
    return (std::filesystem::path(path_) / name).string();
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

WorkbookServiceOptions StorageOptionsFor(const std::string& store,
                                         const std::string& wal_dir) {
  WorkbookServiceOptions options;
  options.store = store;
  options.wal_dir = wal_dir;
  return options;
}

std::string Canon(const Sheet& sheet) { return WriteSheetText(sheet); }

/// One acknowledged operation: the edits the client was told succeeded,
/// plus the WAL size right after the acknowledgement (= the kill points
/// at which this op survives).
struct AckedOp {
  EditBatch edits;
  uint64_t wal_end = 0;
};

/// Random single edit over a small region. Formulas reference the region
/// so recovery has real dependencies to rebuild.
Edit RandomEdit(std::mt19937_64& rng) {
  std::uniform_int_distribution<int> col(1, 6);
  std::uniform_int_distribution<int> row(1, 12);
  Cell cell{col(rng), row(rng)};
  switch (rng() % 5) {
    case 0:
      return Edit::SetNumber(cell, double(rng() % 1000) / 4);
    case 1:
      return Edit::SetText(cell, "v" + std::to_string(rng() % 100));
    case 2:
      return Edit::SetFormula(
          cell, "SUM(A1:B6)+" + std::to_string(rng() % 10));
    case 3:
      return Edit::SetFormula(cell, "$A$1*" + std::to_string(rng() % 9 + 1));
    default: {
      Cell head{col(rng), row(rng)};
      return Edit::ClearRange(Range(head, Cell{head.col, head.row + 1}));
    }
  }
}

/// Header size of a WAL whose header names `snapshot_path` — the first
/// legal kill offset (headers are written atomically via temp+rename, so
/// a crash cannot tear one).
uint64_t WalHeaderBytes(const ScratchDir& dir,
                        const std::string& snapshot_path) {
  std::string probe = dir.File("header_probe.wal");
  std::remove(probe.c_str());
  auto wal = WriteAheadLog::Create(probe, WalOptions{},
                                   {snapshot_path, "taco"});
  EXPECT_TRUE(wal.ok());
  uint64_t bytes = (*wal)->bytes();
  std::remove(probe.c_str());
  return bytes;
}

class StorageRecoveryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(StorageRecoveryTest,
       RandomizedKillPointsRecoverExactlyTheAcknowledgedPrefix) {
  const std::string store = GetParam();
  std::mt19937_64 rng(0xD15C0 + (store == "binary" ? 1 : 0));
  for (int trial = 0, n = FuzzTrials(12); trial < n; ++trial) {
    ScratchDir dir("taco_recovery_" + store);
    const std::string snap = dir.File("book.snap");
    const std::string wal_dir = dir.File("wal");

    // Phase 1: the writer. Apply random acknowledged ops, tracking the
    // oracle state and the WAL offset at each acknowledgement.
    Sheet base;                    // State the last checkpoint persisted.
    Sheet current;                 // State after every acknowledged op.
    base.set_name("book");
    current.set_name("book");
    std::vector<AckedOp> acked;    // Ops since the last checkpoint.
    std::string last_snapshot;     // Path the WAL header names.
    std::string wal_file;
    {
      WorkbookService service(StorageOptionsFor(store, wal_dir));
      auto session = *service.Open("book");
      wal_file = service.WalPathFor("book");
      int ops = 6 + int(rng() % 14);
      for (int i = 0; i < ops; ++i) {
        if (rng() % 6 == 0) {
          // Checkpoint mid-run: snapshot + rotation. Later kill points
          // land in the rotated log; earlier state comes off the
          // snapshot.
          ASSERT_TRUE(session->Checkpoint(snap).ok());
          base = current;  // Sheet is copyable: deep oracle snapshot.
          acked.clear();
          last_snapshot = snap;
          continue;
        }
        AckedOp op;
        if (rng() % 3 == 0) {
          int count = 1 + int(rng() % 4);
          for (int e = 0; e < count; ++e) op.edits.push_back(RandomEdit(rng));
        } else {
          op.edits.push_back(RandomEdit(rng));
        }
        auto result = session->ApplyBatch(op.edits);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        for (const Edit& edit : op.edits) {
          ASSERT_TRUE(ApplyEditToSheet(&current, edit).ok());
        }
        op.wal_end = session->Stats().wal_bytes;
        acked.push_back(std::move(op));
      }
    }  // "Crash": the service dies with whatever the WAL holds.

    // Phase 2: kill the log at a random offset ≥ the header.
    uint64_t header_bytes = WalHeaderBytes(dir, last_snapshot);
    uint64_t full_size = std::filesystem::file_size(wal_file);
    ASSERT_GE(full_size, header_bytes);
    uint64_t cut =
        header_bytes + (full_size > header_bytes
                            ? rng() % (full_size - header_bytes + 1)
                            : 0);
    std::filesystem::resize_file(wal_file, cut);

    // The oracle: the base snapshot plus every op acknowledged wholly
    // before the cut.
    Sheet expected = base;
    size_t surviving = 0;
    for (const AckedOp& op : acked) {
      if (op.wal_end <= cut) {
        for (const Edit& edit : op.edits) {
          ASSERT_TRUE(ApplyEditToSheet(&expected, edit).ok());
        }
        ++surviving;
      }
    }

    // Phase 3: reopen. OPEN must recover snapshot + surviving tail.
    {
      WorkbookService service(StorageOptionsFor(store, wal_dir));
      auto session = service.Open("book");
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      EXPECT_EQ((*session)->Snapshot(), Canon(expected))
          << store << " trial " << trial << ": cut " << cut << " of "
          << full_size << " (" << surviving << "/" << acked.size()
          << " ops survive)";
      SessionStats stats = (*session)->Stats();
      EXPECT_EQ(stats.recovered_records, surviving);
      EXPECT_EQ(stats.dirty, surviving > 0);
      if (surviving > 0) {
        EXPECT_EQ(service.metrics().storage().recoveries.load(), 1u);
        EXPECT_EQ(service.metrics().storage().recovered_records.load(),
                  surviving);
      }
      // Recovered state must also EVALUATE like the oracle, not just
      // store the same contents.
      RecalcEngine oracle_engine(&expected, nullptr);
      for (int c = 1; c <= 6; ++c) {
        for (int r = 1; r <= 12; ++r) {
          Cell cell{c, r};
          EXPECT_EQ((*session)->GetValue(cell),
                    oracle_engine.GetValue(cell))
              << cell.ToString();
        }
      }
    }
  }
}

TEST_P(StorageRecoveryTest,
       GroupCommitKillPointsRecoverEachSessionsAckedPrefix) {
  // The same acknowledged-prefix contract, with --group-commit on and
  // several sessions mutating CONCURRENTLY: acks now ride shared flush
  // rounds, so this is the test that a group fsync never releases an ack
  // before the bytes it promises are down. Each session has exactly one
  // driver thread, so its recorded wal_end offsets are exact ack
  // boundaries even though flushes interleave across sessions.
  const std::string store = GetParam();
  constexpr int kSessions = 3;
  std::mt19937_64 rng(0x6C07 + (store == "binary" ? 1 : 0));
  for (int trial = 0, n = FuzzTrials(6); trial < n; ++trial) {
    ScratchDir dir("taco_gc_recovery_" + store);
    struct PerSession {
      std::string name;
      std::string wal_file;
      Sheet oracle;                 // State after every acknowledged op.
      std::vector<AckedOp> acked;
      uint64_t seed = 0;
    };
    std::vector<PerSession> sessions(kSessions);
    for (int s = 0; s < kSessions; ++s) {
      sessions[s].name = "book" + std::to_string(s);
      sessions[s].seed = rng();
    }

    // Phase 1: concurrent writers through one group committer. A small
    // coalescing window widens the rounds so acks genuinely share
    // fsyncs (the unit suite asserts the batching itself).
    {
      WorkbookServiceOptions options =
          StorageOptionsFor(store, dir.File("wal"));
      options.group_commit = true;
      options.group_commit_max_delay_us = 200;
      WorkbookService service(options);
      std::vector<std::thread> drivers;
      for (PerSession& per : sessions) {
        per.wal_file = service.WalPathFor(per.name);
        drivers.emplace_back([&service, &per] {
          std::mt19937_64 thread_rng(per.seed);
          auto session = *service.Open(per.name);
          int ops = 6 + int(thread_rng() % 10);
          for (int i = 0; i < ops; ++i) {
            AckedOp op;
            int count = 1 + int(thread_rng() % 3);
            for (int e = 0; e < count; ++e) {
              op.edits.push_back(RandomEdit(thread_rng));
            }
            auto result = session->ApplyBatch(op.edits);
            ASSERT_TRUE(result.ok()) << result.status().ToString();
            for (const Edit& edit : op.edits) {
              ASSERT_TRUE(ApplyEditToSheet(&per.oracle, edit).ok());
            }
            op.wal_end = session->Stats().wal_bytes;
            per.acked.push_back(std::move(op));
          }
        });
      }
      for (auto& driver : drivers) driver.join();
    }  // Crash: committer and sessions die together.

    // Phase 2: kill every session's log independently — sometimes at an
    // exact ack boundary (a kill between group rounds), sometimes at a
    // random byte (a kill mid-round, tearing the tail record).
    uint64_t header_bytes = WalHeaderBytes(dir, "");
    for (PerSession& per : sessions) {
      uint64_t full_size = std::filesystem::file_size(per.wal_file);
      ASSERT_GE(full_size, header_bytes);
      uint64_t cut;
      if (rng() % 2 == 0 && !per.acked.empty()) {
        cut = per.acked[rng() % per.acked.size()].wal_end;
      } else {
        cut = header_bytes + (full_size > header_bytes
                                  ? rng() % (full_size - header_bytes + 1)
                                  : 0);
      }
      std::filesystem::resize_file(per.wal_file, cut);

      Sheet expected;
      expected.set_name(per.name);
      size_t surviving = 0;
      for (const AckedOp& op : per.acked) {
        if (op.wal_end <= cut) {
          for (const Edit& edit : op.edits) {
            ASSERT_TRUE(ApplyEditToSheet(&expected, edit).ok());
          }
          ++surviving;
        }
      }

      WorkbookService service(StorageOptionsFor(store, dir.File("wal")));
      auto recovered = service.Open(per.name);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ((*recovered)->Snapshot(), Canon(expected))
          << store << " trial " << trial << " session " << per.name
          << ": cut " << cut << " of " << full_size << " (" << surviving
          << "/" << per.acked.size() << " ops survive)";
      EXPECT_EQ((*recovered)->Stats().recovered_records, surviving);
    }
  }
}

TEST(StorageRecoveryMiscTest,
     GroupCommitSurvivesConcurrentMutatorsReadersAndRotations) {
  // Race surface for the committer (the TSan job runs this binary):
  // several sessions' mutator threads enqueue flush tickets while
  // readers hit the lock-free path and checkpoints rotate the logs out
  // from under the committer (Drain mid-traffic). Every mutation must
  // ack OK, and a reopen must recover the exact final state.
  ScratchDir dir("taco_gc_hammer");
  constexpr int kSessions = 2;
  constexpr int kMutatorsPerSession = 2;
  constexpr int kEditsPerMutator = 30;
  {
    WorkbookServiceOptions options =
        StorageOptionsFor("text", dir.File("wal"));
    options.group_commit = true;
    WorkbookService service(options);
    std::atomic<bool> done{false};
    std::vector<std::thread> mutators;
    std::vector<std::thread> readers;
    for (int s = 0; s < kSessions; ++s) {
      std::string name = "book" + std::to_string(s);
      auto session = *service.Open(name);
      for (int m = 0; m < kMutatorsPerSession; ++m) {
        mutators.emplace_back([session, s, m, &dir] {
          // Each mutator owns one cell; its last write is the final
          // value, so the recovered state below is deterministic.
          Cell cell{m + 1, 1};
          for (int i = 1; i <= kEditsPerMutator; ++i) {
            ASSERT_TRUE(session->SetNumber(cell, i).ok());
            if (m == 0 && i % 10 == 0) {
              // Rotation under load: Checkpoint drains the committer's
              // registration for this file and swaps the fd.
              ASSERT_TRUE(
                  session
                      ->Checkpoint(dir.File("book" + std::to_string(s) +
                                            ".snap"))
                      .ok());
            }
          }
        });
      }
      readers.emplace_back([session, &done] {
        while (!done.load(std::memory_order_relaxed)) {
          (void)session->GetValue(Cell{1, 1});
          (void)session->GetValue(Cell{2, 1});
        }
      });
    }
    for (auto& thread : mutators) thread.join();
    done.store(true, std::memory_order_relaxed);
    for (auto& thread : readers) thread.join();
  }  // Crash.
  WorkbookService reopened(StorageOptionsFor("text", dir.File("wal")));
  for (int s = 0; s < kSessions; ++s) {
    auto session = reopened.Open("book" + std::to_string(s));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (int m = 0; m < kMutatorsPerSession; ++m) {
      EXPECT_EQ((*session)->GetValue(Cell{m + 1, 1}),
                Value::Number(kEditsPerMutator))
          << "session " << s << " mutator " << m;
    }
  }
}

TEST_P(StorageRecoveryTest, CheckpointBoundsRecoveryAndSurvivesRestart) {
  const std::string store = GetParam();
  ScratchDir dir("taco_checkpoint_" + store);
  const std::string snap = dir.File("book.snap");
  {
    WorkbookService service(StorageOptionsFor(store, dir.File("wal")));
    auto session = *service.Open("book");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 41).ok());
    ASSERT_TRUE(session->SetFormula(Cell{2, 1}, "A1+1").ok());
    ASSERT_TRUE(session->Checkpoint(snap).ok());
    EXPECT_FALSE(session->Stats().dirty);
    EXPECT_EQ(session->Stats().wal_records, 0u);  // Rotated away.
    // Post-checkpoint edit: lives only in the WAL tail.
    ASSERT_TRUE(session->SetNumber(Cell{1, 2}, 100).ok());
  }
  {
    WorkbookService service(StorageOptionsFor(store, dir.File("wal")));
    auto session = *service.Open("book");
    EXPECT_EQ(session->GetValue(Cell{2, 1}), Value::Number(42));
    EXPECT_EQ(session->GetValue(Cell{1, 2}), Value::Number(100));
    EXPECT_EQ(session->Stats().recovered_records, 1u);
    EXPECT_TRUE(session->Stats().dirty);
    EXPECT_EQ(session->bound_path(), snap);
  }
}

TEST_P(StorageRecoveryTest, InteriorWalCorruptionFailsOpenWithDataLoss) {
  const std::string store = GetParam();
  ScratchDir dir("taco_walcorrupt_" + store);
  std::string wal_file;
  uint64_t first_record_end = 0;
  {
    WorkbookService service(StorageOptionsFor(store, dir.File("wal")));
    auto session = *service.Open("book");
    wal_file = service.WalPathFor("book");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 1).ok());
    first_record_end = session->Stats().wal_bytes;
    ASSERT_TRUE(session->SetNumber(Cell{1, 2}, 2).ok());
  }
  // Flip a byte inside record 1 (interior: record 2 follows intact).
  {
    std::fstream file(wal_file,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(first_record_end) - 2);
    char byte;
    file.get(byte);
    file.seekp(static_cast<std::streamoff>(first_record_end) - 2);
    file.put(static_cast<char>(byte ^ 0x5A));
  }
  WorkbookService service(StorageOptionsFor(store, dir.File("wal")));
  auto session = service.Open("book");
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kDataLoss);
  // The log is left in place (for inspection / operator action), so the
  // failure is stable rather than quietly replaced by an empty session.
  auto again = service.Open("book");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kDataLoss);
}

TEST_P(StorageRecoveryTest, EvictionParksThroughTheConfiguredEngine) {
  const std::string store = GetParam();
  ScratchDir dir("taco_evict_" + store);
  WorkbookServiceOptions options = StorageOptionsFor(store, dir.File("wal"));
  options.max_resident_sessions = 1;
  WorkbookService service(options);
  std::string paths[2] = {dir.File("wb0.snap"), dir.File("wb1.snap")};
  for (int i = 0; i < 2; ++i) {
    std::string name = "wb" + std::to_string(i);
    auto session = *service.Open(name);
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, i + 7.0).ok());
    ASSERT_TRUE(service.Save(name, paths[i]).ok());
  }
  EXPECT_EQ(service.parked_sessions(), 1u);
  // The parked snapshot is in the ENGINE's format.
  auto bytes = ReadFileLimited(paths[0], 1 << 20);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(LooksLikeBinarySnapshot(*bytes), store == "binary");
  // Transparent reload through the engine, data intact.
  auto reloaded = service.Get("wb0");
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->GetValue(Cell{1, 1}), Value::Number(7));
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageRecoveryTest,
                         ::testing::Values("text", "binary"));

TEST(StorageRecoveryMiscTest, RecoveryKeepsTheOriginalGraphBackend) {
  // The WAL header records the backend key, so crash recovery rebuilds
  // the session with the implementation it was created with — the first
  // opener after a crash cannot change it, mirroring how a resident or
  // parked hit ignores a requested backend.
  ScratchDir dir("taco_backend");
  {
    WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
    auto session = *service.Open("book", "nocomp");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 3).ok());
  }
  WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
  auto recovered = service.Open("book", "cellgraph");  // Ignored.
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->Stats().backend, "NoComp");
  EXPECT_EQ((*recovered)->backend_key(), "nocomp");
  EXPECT_EQ((*recovered)->GetValue(Cell{1, 1}), Value::Number(3));
}

TEST(StorageRecoveryMiscTest, FailedLoadLeavesTheWalIntact) {
  // A LOAD that fails after deciding to reset a mismatched WAL must not
  // have reset it: the acknowledged records stay recoverable, and a
  // failed LOAD of a fresh name must not leave a stray log behind.
  ScratchDir dir("taco_load_fail");
  const std::string other = dir.File("other.snap");
  {
    WorkbookService writer(StorageOptionsFor("text", ""));
    auto session = *writer.Open("tmp");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 555).ok());
    ASSERT_TRUE(session->Save(other).ok());
  }
  {
    WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
    auto session = *service.Open("book");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 42).ok());
  }
  WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
  // Mismatched WAL + a bogus backend: the load fails AFTER the reset
  // decision — the reset must not have happened.
  auto failed = service.Load("book", other, "bogus-backend");
  ASSERT_FALSE(failed.ok());
  auto recovered = service.Open("book");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->GetValue(Cell{1, 1}), Value::Number(42));
  // Fresh name, failing load: no stray WAL may appear for it.
  ASSERT_FALSE(service.Load("fresh", dir.File("missing.snap")).ok());
  EXPECT_FALSE(std::filesystem::exists(service.WalPathFor("fresh")));
  ASSERT_FALSE(service.Load("fresh2", other, "bogus").ok());
  EXPECT_FALSE(std::filesystem::exists(service.WalPathFor("fresh2")));
}

TEST(StorageRecoveryMiscTest, ClosedNamesDoNotResurrectFromTheirWal) {
  ScratchDir dir("taco_close");
  WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
  {
    auto session = *service.Open("book");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 9).ok());
    EXPECT_TRUE(std::filesystem::exists(service.WalPathFor("book")));
  }
  ASSERT_TRUE(service.Close("book").ok());
  EXPECT_FALSE(std::filesystem::exists(service.WalPathFor("book")));
  // OPEN after CLOSE is a fresh, empty session — no WAL resurrection.
  auto session = *service.Open("book");
  EXPECT_EQ(session->Stats().cells, 0u);
}

TEST(StorageRecoveryMiscTest, LoadResetsAWalRecordedAgainstAnotherFile) {
  ScratchDir dir("taco_load_reset");
  const std::string other = dir.File("other.snap");
  {
    // A completely separate service writes `other`.
    WorkbookService writer(StorageOptionsFor("text", ""));
    auto session = *writer.Open("tmp");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 555).ok());
    ASSERT_TRUE(session->Save(other).ok());
  }
  {
    // Crash a session whose WAL extends the EMPTY snapshot (never saved).
    WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
    auto session = *service.Open("book");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 1).ok());
  }
  // LOAD of `other` under the same name: the operator's explicit file
  // wins; the stale WAL must not replay on top of it.
  WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
  auto loaded = service.Load("book", other);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->GetValue(Cell{1, 1}), Value::Number(555));
  EXPECT_EQ((*loaded)->Stats().recovered_records, 0u);
  // ... and the reset WAL now extends `other`: post-LOAD edits recover.
  ASSERT_TRUE((*loaded)->SetNumber(Cell{1, 2}, 2.0).ok());
  {
    WorkbookService after_crash(StorageOptionsFor("text", dir.File("wal")));
    auto recovered = after_crash.Open("book");
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_EQ((*recovered)->GetValue(Cell{1, 1}), Value::Number(555));
    EXPECT_EQ((*recovered)->GetValue(Cell{1, 2}), Value::Number(2));
  }
}

TEST(StorageRecoveryMiscTest, KillPointRecoveryKeepsTheNoCompBackend) {
  // The backend key must survive ANY kill point, not just a clean
  // shutdown: the WAL header is written atomically at creation, so even
  // a log truncated to the header — or torn mid-record — still names
  // the backend, and recovery rebuilds a NoComp session holding exactly
  // the acknowledged prefix.
  constexpr int kOps = 5;
  // Header size of a log whose header is {no snapshot, "nocomp"}.
  uint64_t header_bytes = 0;
  {
    ScratchDir probe_dir("taco_nocomp_probe");
    auto probe = WriteAheadLog::Create(probe_dir.File("probe.wal"),
                                       WalOptions{}, {"", "nocomp"});
    ASSERT_TRUE(probe.ok());
    header_bytes = (*probe)->bytes();
  }
  for (int cut_at = 0; cut_at <= kOps; ++cut_at) {
    for (bool tear : {false, true}) {
      // A header is written whole via temp+rename — no kill point can
      // tear it — so the smallest legal cut is the full header.
      if (tear && cut_at == 0) continue;
      ScratchDir dir("taco_nocomp_kill");
      std::vector<uint64_t> boundaries{header_bytes};
      std::string wal_file;
      {
        WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
        auto session = *service.Open("book", "nocomp");
        wal_file = service.WalPathFor("book");
        for (int i = 1; i <= kOps; ++i) {
          ASSERT_TRUE(session->SetNumber(Cell{1, i}, i).ok());
          boundaries.push_back(session->Stats().wal_bytes);
        }
      }  // Crash.
      // A torn cut loses the (never fully written) record it bites into.
      uint64_t cut = boundaries[cut_at] - (tear ? 1 : 0);
      int surviving = tear ? std::max(cut_at - 1, 0) : cut_at;
      std::filesystem::resize_file(wal_file, cut);

      WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
      auto recovered = service.Open("book");  // No backend requested.
      ASSERT_TRUE(recovered.ok())
          << recovered.status().ToString() << " cut=" << cut;
      EXPECT_EQ((*recovered)->Stats().backend, "NoComp")
          << "cut=" << cut << " tear=" << tear;
      EXPECT_EQ((*recovered)->backend_key(), "nocomp");
      EXPECT_EQ((*recovered)->Stats().recovered_records,
                uint64_t(surviving));
      for (int i = 1; i <= kOps; ++i) {
        EXPECT_EQ((*recovered)->GetValue(Cell{1, i}),
                  i <= surviving ? Value::Number(i) : Value::Blank())
            << "cut=" << cut << " row " << i;
      }
    }
  }
}

TEST(StorageRecoveryMiscTest, LoadRestoresTheBackendFromTheWalHeader) {
  // LOAD of the very file the crashed session's WAL extends is recovery:
  // with no explicit backend the WAL header's key wins, and the logged
  // tail replays on top of the snapshot.
  ScratchDir dir("taco_load_backend");
  const std::string snap = dir.File("book.snap");
  {
    WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
    auto session = *service.Open("book", "nocomp");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 1).ok());
    ASSERT_TRUE(session->Checkpoint(snap).ok());
    ASSERT_TRUE(session->SetNumber(Cell{1, 2}, 2).ok());  // In the WAL.
  }  // Crash.
  WorkbookService service(StorageOptionsFor("text", dir.File("wal")));
  auto loaded = service.Load("book", snap);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Stats().backend, "NoComp");
  EXPECT_EQ((*loaded)->GetValue(Cell{1, 1}), Value::Number(1));
  EXPECT_EQ((*loaded)->GetValue(Cell{1, 2}), Value::Number(2));
  EXPECT_EQ((*loaded)->Stats().recovered_records, 1u);
  // An explicit caller choice still outranks the header.
  ASSERT_TRUE(service.Close("book").ok());
  auto explicit_load = service.Load("book", snap, "cellgraph");
  ASSERT_TRUE(explicit_load.ok()) << explicit_load.status().ToString();
  EXPECT_EQ((*explicit_load)->Stats().backend, "CellGraph");
}

TEST(StorageRecoveryMiscTest, BinarySnapshotRestoresTheBackendWithoutAWal) {
  // With the WAL disabled entirely, the binary snapshot's meta section
  // is the only place the key survives — a later LOAD with no explicit
  // backend must come back on it, not on the service default.
  ScratchDir dir("taco_snapmeta_backend");
  const std::string snap = dir.File("book.bsnap");
  {
    WorkbookService service(StorageOptionsFor("binary", ""));
    auto session = *service.Open("book", "nocomp");
    ASSERT_TRUE(session->SetNumber(Cell{1, 1}, 5).ok());
    ASSERT_TRUE(session->Save(snap).ok());
  }
  WorkbookService service(StorageOptionsFor("binary", ""));
  auto loaded = service.Load("copy", snap);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->Stats().backend, "NoComp");
  EXPECT_EQ((*loaded)->GetValue(Cell{1, 1}), Value::Number(5));
  // Explicit choice outranks the snapshot meta.
  auto chosen = service.Load("copy2", snap, "cellgraph");
  ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();
  EXPECT_EQ((*chosen)->Stats().backend, "CellGraph");
}

TEST(StorageRecoveryMiscTest, WalFailureLatchesUntilACheckpointSucceeds) {
  // An append failure leaves the log missing an acknowledged edit, so
  // the session must (a) report the failed mutation as an error even
  // though it applied in memory, (b) refuse further mutations with
  // DataLoss — accepting them would widen the unlogged gap silently —
  // and (c) clear the latch only once a CHECKPOINT folds the unlogged
  // state into a durable snapshot.
  ScratchDir dir("taco_wal_latch");
  const std::string wal_dir = dir.File("wal");
  WorkbookService service(StorageOptionsFor("text", wal_dir));
  CommandProcessor processor(&service);
  EXPECT_EQ(processor.Execute("OPEN book"), "OK opened book backend=TACO");

  // Break WAL creation: replace the (still empty) wal directory with a
  // plain file, so the lazy Create on first append cannot open a path
  // under it. (chmod tricks don't inject here: tests may run as root.)
  std::filesystem::remove_all(wal_dir);
  std::ofstream(wal_dir).put('x');

  std::string failed = processor.Execute("SET book A1 7");
  EXPECT_TRUE(failed.starts_with("ERR")) << failed;
  EXPECT_NE(failed.find("not logged"), std::string::npos) << failed;
  // The edit DID apply in memory, and readers see it: the post-commit
  // version published before the error went out.
  EXPECT_EQ(processor.Execute("GET book A1"), "VALUE A1 7");
  std::string stats = processor.Execute("STATS book");
  EXPECT_NE(stats.find(" wal_failed=1"), std::string::npos) << stats;
  // Regression: the failed append must not report a durability wait —
  // last_sync_ns is only harvested from a SUCCESSFUL append, so the
  // span's wal_fsync phase stays zero (it used to leak the previous
  // successful append's timing into the failed op's breakdown).
  {
    auto spans = service.metrics().trace().Newest(1);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_FALSE(spans[0].ok);
    EXPECT_EQ(spans[0].wal_fsync_ns, 0u);
  }

  // The latch refuses everything mutating, single edits and batches.
  std::string refused = processor.Execute("SET book A2 8");
  EXPECT_TRUE(refused.starts_with("ERR DataLoss:")) << refused;
  EXPECT_NE(refused.find("CHECKPOINT"), std::string::npos) << refused;
  EXPECT_TRUE(processor.Execute("BATCH book 1\nSET A2 8")
                  .starts_with("ERR DataLoss:"));
  EXPECT_EQ(processor.Execute("GET book A2"), "VALUE A2 ");

  // A CHECKPOINT that still cannot write its WAL must keep the latch.
  std::string snap = dir.File("book.snap");
  EXPECT_TRUE(processor.Execute("CHECKPOINT book " + snap)
                  .starts_with("ERR"));
  EXPECT_NE(processor.Execute("STATS book").find(" wal_failed=1"),
            std::string::npos);

  // Restore the directory: CHECKPOINT now snapshots the full in-memory
  // state (including the unlogged A1) and re-establishes durability.
  std::filesystem::remove(wal_dir);
  std::filesystem::create_directories(wal_dir);
  EXPECT_TRUE(processor.Execute("CHECKPOINT book " + snap)
                  .starts_with("OK checkpoint book"));
  EXPECT_NE(processor.Execute("STATS book").find(" wal_failed=0"),
            std::string::npos);
  EXPECT_TRUE(processor.Execute("SET book A2 8").starts_with("OK set"));

  // Crash + recover: snapshot carries A1, the fresh log carries A2.
  WorkbookService reopened(StorageOptionsFor("text", wal_dir));
  auto recovered = reopened.Open("book");
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->GetValue(Cell{1, 1}), Value::Number(7));
  EXPECT_EQ((*recovered)->GetValue(Cell{1, 2}), Value::Number(8));
}

// ---------------------------------------------------------------------------
// Differential backend equivalence through the protocol
// ---------------------------------------------------------------------------

TEST(StorageDifferentialTest, BackendsAgreeOverRandomProtocolWorkloads) {
  std::mt19937_64 rng(0xB0B);
  for (int trial = 0, n = FuzzTrials(8); trial < n; ++trial) {
    ScratchDir text_dir("taco_diff_text");
    ScratchDir binary_dir("taco_diff_binary");
    auto text_service = std::make_unique<WorkbookService>(
        StorageOptionsFor("text", text_dir.File("wal")));
    auto binary_service = std::make_unique<WorkbookService>(
        StorageOptionsFor("binary", binary_dir.File("wal")));
    CommandProcessor text_proc(text_service.get());
    CommandProcessor binary_proc(binary_service.get());

    auto both = [&](const std::string& command) {
      std::string a = text_proc.Execute(command);
      std::string b = binary_proc.Execute(command);
      // Responses carry no paths for these commands, so equality is
      // byte-level (recalc timings are formatted but... find_ms varies).
      return std::make_pair(a, b);
    };

    std::string text_snap = text_dir.File("book.snap");
    std::string binary_snap = binary_dir.File("book.snap");
    both("OPEN book");
    int ops = 10 + int(rng() % 20);
    for (int i = 0; i < ops; ++i) {
      Edit edit = RandomEdit(rng);
      std::string command;
      switch (edit.kind) {
        case Edit::Kind::kSetNumber:
          command = "SET book " + edit.cell.ToString() + " " +
                    std::to_string(edit.number);
          break;
        case Edit::Kind::kSetText:
          command = "SET book " + edit.cell.ToString() + " \"" + edit.text +
                    "\"";
          break;
        case Edit::Kind::kSetFormula:
          command = "FORMULA book " + edit.cell.ToString() + " " + edit.text;
          break;
        case Edit::Kind::kClearRange:
          command = "CLEAR book " + edit.range.ToString();
          break;
      }
      both(command);
      if (rng() % 7 == 0) {
        text_proc.Execute("CHECKPOINT book " + text_snap);
        binary_proc.Execute("CHECKPOINT book " + binary_snap);
      }
      if (rng() % 9 == 0) {
        // GET responses must agree byte-for-byte.
        Cell cell{int(rng() % 6) + 1, int(rng() % 12) + 1};
        auto [a, b] = both("GET book " + cell.ToString());
        ASSERT_EQ(a, b) << "trial " << trial;
      }
    }
    // Final state equality (the sheet text is engine-independent).
    std::string text_state = (*text_service->Get("book"))->Snapshot();
    std::string binary_state = (*binary_service->Get("book"))->Snapshot();
    ASSERT_EQ(text_state, binary_state) << "trial " << trial;

    // Crash both, recover both: still identical.
    text_service = std::make_unique<WorkbookService>(
        StorageOptionsFor("text", text_dir.File("wal")));
    binary_service = std::make_unique<WorkbookService>(
        StorageOptionsFor("binary", binary_dir.File("wal")));
    auto text_session = text_service->Open("book");
    auto binary_session = binary_service->Open("book");
    ASSERT_TRUE(text_session.ok()) << text_session.status().ToString();
    ASSERT_TRUE(binary_session.ok()) << binary_session.status().ToString();
    ASSERT_EQ((*text_session)->Snapshot(), (*binary_session)->Snapshot())
        << "trial " << trial;
    ASSERT_EQ((*text_session)->Snapshot(), text_state) << "trial " << trial;
  }
}

}  // namespace
}  // namespace taco
