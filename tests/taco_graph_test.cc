// Tests for the compressed formula graph: Algorithm 2 (greedy compression
// with heuristics), Algorithm 3 (query), maintenance, and — most
// importantly — equivalence with the NoComp baseline on randomized and
// autofill-generated workloads (the losslessness guarantee of Sec. II-B).

#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "common/range_set.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

using test::BruteForceDependents;
using test::BruteForcePrecedents;
using test::CellSet;
using test::RandomAcyclicDependencies;
using test::ToCellSet;

Dependency Dep(const Range& prec, const Cell& dep) {
  Dependency d;
  d.prec = prec;
  d.dep = dep;
  return d;
}

// Returns the single live edge with the given pattern, failing if absent.
std::optional<CompressedEdge> FindEdge(const TacoGraph& graph,
                                       PatternType pattern) {
  std::optional<CompressedEdge> found;
  graph.ForEachEdge([&](const CompressedEdge& edge) {
    if (edge.pattern == pattern) found = edge;
  });
  return found;
}

// ---------------------------------------------------------------------------
// Compression shape on the paper's examples

TEST(TacoGraphTest, SlidingWindowColumnCompressesToOneEdge) {
  // Fig. 4a via autofill: C1=SUM(A1:B3) filled down 500 rows.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM(A1:B3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 500)).ok());

  TacoGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.NumRawDependencies(), 500u);

  auto edge = FindEdge(graph, PatternType::kRR);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->dep, Range(3, 1, 3, 500));
  EXPECT_EQ(edge->prec, Range(1, 1, 2, 502));
  EXPECT_EQ(edge->compressed_count, 500u);
}

TEST(TacoGraphTest, PaperFig8InsertAtC4) {
  // Setup of Fig. 8: C1..C3 = SUM($B$1:Bi)*A1, D4 = SUM(B1:B4), then the
  // dependency of SUM($B$1:B4) inserted at C4.
  TacoGraph graph;
  for (int row = 1; row <= 3; ++row) {
    Dependency to_b = Dep(Range(2, 1, 2, row), Cell{3, row});
    to_b.head_flags = AbsFlags{true, true};  // $B$1
    ASSERT_TRUE(graph.AddDependency(to_b).ok());
    ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{1, 1}), Cell{3, row})).ok());
  }
  ASSERT_TRUE(graph.AddDependency(Dep(Range(2, 1, 2, 4), Cell{4, 4})).ok());
  // Before the insert: FR edge B1:B3 -> C1:C3, FF edge A1 -> C1:C3, and the
  // uncompressed B1:B4 -> D4.
  EXPECT_EQ(graph.NumEdges(), 3u);

  Dependency inserted = Dep(Range(2, 1, 2, 4), Cell{3, 4});
  inserted.head_flags = AbsFlags{true, true};
  ASSERT_TRUE(graph.AddDependency(inserted).ok());

  // Step 3 of Fig. 8: column-wise compression wins, giving B1:B4 -> C1:C4.
  EXPECT_EQ(graph.NumEdges(), 3u);
  auto fr = FindEdge(graph, PatternType::kFR);
  ASSERT_TRUE(fr.has_value());
  EXPECT_EQ(fr->prec, Range(2, 1, 2, 4));
  EXPECT_EQ(fr->dep, Range(3, 1, 3, 4));
  EXPECT_EQ(fr->compressed_count, 4u);

  auto ff = FindEdge(graph, PatternType::kFF);
  ASSERT_TRUE(ff.has_value());
  EXPECT_EQ(ff->prec, Range(Cell{1, 1}));
  EXPECT_EQ(ff->dep, Range(3, 1, 3, 3));

  auto single = FindEdge(graph, PatternType::kSingle);
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->dep, Range(Cell{4, 4}));
}

TEST(TacoGraphTest, ChainPreferredOverRR) {
  // A column of x = above + 1 formulas matches both RR and RR-Chain; the
  // special-pattern heuristic must pick RR-Chain.
  TacoGraph graph;
  for (int row = 2; row <= 100; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row - 1}), Cell{1, row})).ok());
  }
  EXPECT_EQ(graph.NumEdges(), 1u);
  auto edge = FindEdge(graph, PatternType::kRRChain);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->compressed_count, 99u);
}

TEST(TacoGraphTest, ChainQueryAccessesEdgeOnce) {
  TacoGraph graph;
  for (int row = 2; row <= 1000; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row - 1}), Cell{1, row})).ok());
  }
  auto result = graph.FindDependents(Range(Cell{1, 1}));
  EXPECT_EQ(CoveredCellCount(result), 999u);
  // The whole chain resolves with O(1) edge accesses — the point of
  // RR-Chain (Sec. V). Without it this would be ~999 accesses.
  EXPECT_LE(graph.last_query_counters().edge_accesses, 8u);
}

TEST(TacoGraphTest, RowWiseCompression) {
  // A row of formulas referencing the cell above each.
  TacoGraph graph;
  for (int col = 1; col <= 50; ++col) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{col, 1}), Cell{col, 2})).ok());
  }
  EXPECT_EQ(graph.NumEdges(), 1u);
  auto edge = FindEdge(graph, PatternType::kRR);
  ASSERT_TRUE(edge.has_value());
  EXPECT_EQ(edge->meta.axis, Axis::kRow);
  EXPECT_EQ(edge->dep, Range(1, 2, 50, 2));
}

TEST(TacoGraphTest, ColumnPriorityBeatsRowPriority) {
  // A 2x2 block where both column- and row-wise merges are possible for
  // the final insert; heuristic 1 selects column-wise.
  TacoGraph graph;
  // B1 references A1; B2 references A2 (column RR). C1 references B1-ish
  // shape to give a row candidate: craft both.
  ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{1, 1}), Cell{2, 1})).ok());
  ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{2, 2}), Cell{3, 2})).ok());
  // New dependency at C1 referencing B1: row-adjacent to nothing useful,
  // column-adjacent to C2's edge (rel (-1,0)) and row-adjacent to B1's
  // edge (rel (-1,0)). Both RR merges are valid; column must win.
  ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{2, 1}), Cell{3, 1})).ok());

  EXPECT_EQ(graph.NumEdges(), 2u);
  auto rr = FindEdge(graph, PatternType::kRR);
  ASSERT_TRUE(rr.has_value());
  EXPECT_EQ(rr->meta.axis, Axis::kColumn);
  EXPECT_EQ(rr->dep, Range(3, 1, 3, 2));
}

TEST(TacoGraphTest, DollarCueSelectsFRoverRF) {
  // Sec. IV-A: for SUM($B$1:B4) at C4 both FR (via the B-column edge) and
  // other merges may be valid; the $ cue prioritizes FR. Construct an
  // ambiguous situation: C2 and C3 where the new dependency fits FR on one
  // edge and FF on another.
  TacoGraph graph;
  // Edge 1: FR-shaped history at C1..C2 (B1:B1 -> C1, B1:B2 -> C2).
  ASSERT_TRUE(graph.AddDependency(Dep(Range(2, 1, 2, 1), Cell{3, 1})).ok());
  ASSERT_TRUE(graph.AddDependency(Dep(Range(2, 1, 2, 2), Cell{3, 2})).ok());
  auto fr_before = FindEdge(graph, PatternType::kFR);
  ASSERT_TRUE(fr_before.has_value());

  // New dependency B1:B3 -> C3 with $B$1:B3 flags extends the FR edge.
  Dependency inserted = Dep(Range(2, 1, 2, 3), Cell{3, 3});
  inserted.head_flags = AbsFlags{true, true};
  ASSERT_TRUE(graph.AddDependency(inserted).ok());
  auto fr = FindEdge(graph, PatternType::kFR);
  ASSERT_TRUE(fr.has_value());
  EXPECT_EQ(fr->dep, Range(3, 1, 3, 3));
  EXPECT_EQ(fr->compressed_count, 3u);
}

TEST(TacoGraphTest, InRowModeOnlyCompressesSameRowReferences) {
  Sheet sheet;
  // Derived column: B_i = A_i * 2 (same-row references, InRow-compressible).
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 1}, "A1*2").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{2, 1}, Range(2, 1, 2, 100)).ok());
  // Sliding window over previous rows (InRow must NOT compress these).
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 2}, "SUM(A1:A2)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 2}, Range(3, 2, 3, 100)).ok());

  TacoGraph full{TacoOptions::Full()};
  TacoGraph in_row{TacoOptions::InRow()};
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &full).ok());
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &in_row).ok());

  EXPECT_EQ(full.NumEdges(), 2u);
  // InRow compresses the derived column only: 1 edge + 99 singles.
  EXPECT_EQ(in_row.NumEdges(), 100u);
  EXPECT_EQ(in_row.Name(), "TACO-InRow");
  // Both remain lossless.
  EXPECT_EQ(ToCellSet(full.FindDependents(Range(Cell{1, 50}))),
            ToCellSet(in_row.FindDependents(Range(Cell{1, 50}))));
}

TEST(TacoGraphTest, PatternStatsTrackReducedEdges) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 1}, "A1*2").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{2, 1}, Range(2, 1, 2, 50)).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM($A$1:$A$50)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 20)).ok());

  TacoGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  auto stats = graph.PatternStats();
  ASSERT_TRUE(stats.contains(PatternType::kRR));
  ASSERT_TRUE(stats.contains(PatternType::kFF));
  EXPECT_EQ(stats[PatternType::kRR].edges, 1u);
  EXPECT_EQ(stats[PatternType::kRR].dependencies, 50u);
  EXPECT_EQ(stats[PatternType::kRR].reduced(), 49u);
  EXPECT_EQ(stats[PatternType::kFF].reduced(), 19u);
}

// ---------------------------------------------------------------------------
// Query correctness on compressed graphs

TEST(TacoGraphTest, Fig2StyleQuery) {
  // The running example: N3..N6949-style IF formulas with 4 references.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{14, 3}, "IF(A3=A2,N2+M3,M3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{14, 3}, Range(14, 3, 14, 1000)).ok());

  TacoGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  // Far fewer compressed edges than the ~4000 raw dependencies.
  EXPECT_LE(graph.NumEdges(), 8u);
  EXPECT_EQ(graph.NumRawDependencies(), 3992u);

  // Dependents of A500 are N500:N1000 (via A-refs then the N-chain).
  auto result = graph.FindDependents(Range(Cell{1, 500}));
  CellSet expected;
  for (int row = 500; row <= 1000; ++row) expected.insert({14, row});
  EXPECT_EQ(ToCellSet(result), expected);

  // Dependents of M800: N800:N1000.
  result = graph.FindDependents(Range(Cell{13, 800}));
  expected.clear();
  for (int row = 800; row <= 1000; ++row) expected.insert({14, row});
  EXPECT_EQ(ToCellSet(result), expected);
}

TEST(TacoGraphTest, PrecedentsOnCompressedGraph) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 1}, "SUM(A1:B3)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 1}, Range(3, 1, 3, 100)).ok());

  TacoGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  auto result = graph.FindPrecedents(Range(Cell{3, 50}));
  // C50 = SUM(A50:B52): exactly that window.
  EXPECT_EQ(ToCellSet(result), ToCellSet(std::vector<Range>{Range(1, 50, 2, 52)}));
}

// ---------------------------------------------------------------------------
// Maintenance

TEST(TacoGraphTest, ClearMidColumnSplitsEdge) {
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{2, 1}, "A1*2").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{2, 1}, Range(2, 1, 2, 100)).ok());

  TacoGraph graph;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &graph).ok());
  ASSERT_EQ(graph.NumEdges(), 1u);

  ASSERT_TRUE(graph.RemoveFormulaCells(Range(2, 40, 2, 60)).ok());
  EXPECT_EQ(graph.NumEdges(), 2u);
  EXPECT_EQ(graph.NumRawDependencies(), 79u);

  // A45 no longer has dependents; A30 still has B30.
  EXPECT_TRUE(graph.FindDependents(Range(Cell{1, 45})).empty());
  EXPECT_EQ(ToCellSet(graph.FindDependents(Range(Cell{1, 30}))),
            (CellSet{{2, 30}}));
}

TEST(TacoGraphTest, UpdateAsClearPlusInsert) {
  TacoGraph graph;
  for (int row = 1; row <= 10; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row}), Cell{2, row})).ok());
  }
  ASSERT_EQ(graph.NumEdges(), 1u);

  // Update B5 to reference C5 instead: clear then insert.
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(Cell{2, 5})).ok());
  ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{3, 5}), Cell{2, 5})).ok());

  EXPECT_TRUE(graph.FindDependents(Range(Cell{1, 5})).empty());
  EXPECT_EQ(ToCellSet(graph.FindDependents(Range(Cell{3, 5}))),
            (CellSet{{2, 5}}));
  // The old edge split into two RR pieces plus the new single.
  EXPECT_EQ(graph.NumEdges(), 3u);
  EXPECT_EQ(graph.NumRawDependencies(), 10u);
}

TEST(TacoGraphTest, ReinsertAfterClearRecompresses) {
  TacoGraph graph;
  for (int row = 1; row <= 10; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row}), Cell{2, row})).ok());
  }
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(Cell{2, 5})).ok());
  EXPECT_EQ(graph.NumEdges(), 2u);
  // Re-inserting the cleared dependency merges back into a neighbor edge.
  ASSERT_TRUE(graph.AddDependency(Dep(Range(Cell{1, 5}), Cell{2, 5})).ok());
  EXPECT_LE(graph.NumEdges(), 2u);
  EXPECT_EQ(graph.NumRawDependencies(), 10u);
}

TEST(TacoGraphTest, RemoveEverything) {
  TacoGraph graph;
  for (int row = 1; row <= 20; ++row) {
    ASSERT_TRUE(
        graph.AddDependency(Dep(Range(Cell{1, row}), Cell{2, row})).ok());
  }
  ASSERT_TRUE(graph.RemoveFormulaCells(Range(2, 1, 2, 20)).ok());
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_EQ(graph.NumVertices(), 0u);
  EXPECT_EQ(graph.NumRawDependencies(), 0u);
}

// ---------------------------------------------------------------------------
// Equivalence with NoComp (the losslessness guarantee), over random and
// autofill-generated workloads, including after maintenance.

class TacoEquivalenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TacoEquivalenceTest, RandomWorkloadMatchesNoComp) {
  auto deps = RandomAcyclicDependencies(GetParam(), 80);
  TacoGraph taco;
  NoCompGraph nocomp;
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(taco.AddDependency(dep).ok());
    ASSERT_TRUE(nocomp.AddDependency(dep).ok());
  }
  EXPECT_EQ(taco.NumRawDependencies(), deps.size());

  std::mt19937 rng(GetParam() ^ 0xbeef);
  std::uniform_int_distribution<int32_t> col(1, 8);
  std::uniform_int_distribution<int32_t> row(1, 30);
  for (int trial = 0; trial < 30; ++trial) {
    Cell c{col(rng), row(rng)};
    Range input = trial % 4 == 0
                      ? Range(c.col, c.row, std::min(c.col + 2, 8),
                              std::min(c.row + 4, 30))
                      : Range(c);
    EXPECT_EQ(ToCellSet(taco.FindDependents(input)),
              ToCellSet(nocomp.FindDependents(input)))
        << "dependents of " << input.ToString();
    EXPECT_EQ(ToCellSet(taco.FindPrecedents(input)),
              ToCellSet(nocomp.FindPrecedents(input)))
        << "precedents of " << input.ToString();
  }
}

TEST_P(TacoEquivalenceTest, AutofillSheetMatchesNoComp) {
  std::mt19937 rng(GetParam());
  Sheet sheet;
  // Mix of all pattern shapes, autofilled into columns, with noise.
  ASSERT_TRUE(sheet.SetFormula(Cell{3, 2}, "SUM(A1:B2)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{3, 2}, Range(3, 2, 3, 40)).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{4, 1}, "SUM($A$1:A1)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{4, 1}, Range(4, 1, 4, 40)).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{5, 1}, "SUM($A$1:$B$40)").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{5, 1}, Range(5, 1, 5, 40)).ok());
  ASSERT_TRUE(sheet.SetFormula(Cell{6, 2}, "F1+1").ok());
  ASSERT_TRUE(Autofill(&sheet, Cell{6, 2}, Range(6, 2, 6, 40)).ok());
  // Hand-written outliers that must stay uncompressed or merge oddly.
  std::uniform_int_distribution<int32_t> col(1, 6);
  std::uniform_int_distribution<int32_t> row(1, 40);
  for (int i = 0; i < 10; ++i) {
    Cell c{static_cast<int32_t>(7 + i % 3), row(rng)};
    std::string ref = CellToA1(Cell{col(rng), row(rng)});
    std::string ref2 = CellToA1(Cell{col(rng), row(rng)});
    ASSERT_TRUE(sheet.SetFormula(c, ref + "+" + ref2).ok());
  }

  TacoGraph taco;
  NoCompGraph nocomp;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &taco).ok());
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &nocomp).ok());
  // Compression must actually happen on this workload.
  EXPECT_LT(taco.NumEdges(), nocomp.NumEdges() / 4);

  for (int trial = 0; trial < 30; ++trial) {
    Range input(Cell{col(rng), row(rng)});
    EXPECT_EQ(ToCellSet(taco.FindDependents(input)),
              ToCellSet(nocomp.FindDependents(input)))
        << "dependents of " << input.ToString();
    EXPECT_EQ(ToCellSet(taco.FindPrecedents(input)),
              ToCellSet(nocomp.FindPrecedents(input)))
        << "precedents of " << input.ToString();
  }
}

TEST_P(TacoEquivalenceTest, MaintenanceMatchesNoComp) {
  auto deps = RandomAcyclicDependencies(GetParam() + 7777, 70);
  TacoGraph taco;
  NoCompGraph nocomp;
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(taco.AddDependency(dep).ok());
    ASSERT_TRUE(nocomp.AddDependency(dep).ok());
  }

  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int32_t> col(1, 8);
  std::uniform_int_distribution<int32_t> row(1, 30);

  // Interleave clears, inserts, and queries.
  for (int round = 0; round < 10; ++round) {
    Range cleared(col(rng), row(rng), 8, std::min(row(rng) + 2, 30));
    if (!cleared.IsValid()) continue;
    ASSERT_TRUE(taco.RemoveFormulaCells(cleared).ok());
    ASSERT_TRUE(nocomp.RemoveFormulaCells(cleared).ok());

    Dependency added = Dep(Range(col(rng), 1, 8, 3), Cell{col(rng), 25});
    ASSERT_TRUE(taco.AddDependency(added).ok());
    ASSERT_TRUE(nocomp.AddDependency(added).ok());

    for (int trial = 0; trial < 5; ++trial) {
      Range input(Cell{col(rng), row(rng)});
      ASSERT_EQ(ToCellSet(taco.FindDependents(input)),
                ToCellSet(nocomp.FindDependents(input)))
          << "round " << round << " dependents of " << input.ToString();
      ASSERT_EQ(ToCellSet(taco.FindPrecedents(input)),
                ToCellSet(nocomp.FindPrecedents(input)))
          << "round " << round << " precedents of " << input.ToString();
    }
  }
}

TEST_P(TacoEquivalenceTest, GapPatternStaysLossless) {
  // Stride-2 workload with the extended pattern set enabled.
  TacoOptions options;
  options.patterns = ExtendedPatternSet();
  TacoGraph taco{options};
  NoCompGraph nocomp;

  std::vector<Dependency> deps;
  for (int row = 1; row <= 30; row += 2) {
    deps.push_back(Dep(Range(Cell{1, row}), Cell{2, row}));
  }
  // Interleaved unrelated formulas in the odd rows referencing column C.
  for (int row = 2; row <= 30; row += 2) {
    deps.push_back(Dep(Range(Cell{3, row}), Cell{2, row}));
  }
  for (const Dependency& dep : deps) {
    ASSERT_TRUE(taco.AddDependency(dep).ok());
    ASSERT_TRUE(nocomp.AddDependency(dep).ok());
  }

  for (int row = 1; row <= 30; ++row) {
    for (int c = 1; c <= 3; ++c) {
      Range input(Cell{c, row});
      ASSERT_EQ(ToCellSet(taco.FindDependents(input)),
                ToCellSet(nocomp.FindDependents(input)))
          << "dependents of " << input.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TacoEquivalenceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u));

}  // namespace
}  // namespace taco
