// Unit and randomized property tests for the R-tree, checked against a
// brute-force list-of-rectangles oracle.

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "rtree/rtree.h"

namespace taco {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  std::vector<RTree::EntryId> out;
  tree.SearchOverlap(Range(1, 1, 100, 100), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(tree.AnyOverlap(Range(1, 1, 100, 100)));
  EXPECT_TRUE(tree.CheckInvariantsForTesting());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Insert(Range(2, 2, 4, 4), 7);
  EXPECT_EQ(tree.size(), 1u);

  std::vector<RTree::EntryId> out;
  tree.SearchOverlap(Range(4, 4, 9, 9), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);

  out.clear();
  tree.SearchOverlap(Range(5, 5, 9, 9), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, DuplicateBoxesDistinctIds) {
  RTree tree;
  Range box(1, 1, 2, 2);
  tree.Insert(box, 1);
  tree.Insert(box, 2);
  tree.Insert(box, 3);
  std::vector<RTree::EntryId> out;
  tree.SearchOverlap(box, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<RTree::EntryId>{1, 2, 3}));

  EXPECT_TRUE(tree.Remove(box, 2));
  out.clear();
  tree.SearchOverlap(box, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<RTree::EntryId>{1, 3}));
}

TEST(RTreeTest, RemoveMissingReturnsFalse) {
  RTree tree;
  tree.Insert(Range(1, 1, 2, 2), 1);
  EXPECT_FALSE(tree.Remove(Range(1, 1, 2, 2), 99));
  EXPECT_FALSE(tree.Remove(Range(3, 3, 4, 4), 1));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(RTreeTest, SplitsGrowHeight) {
  RTree tree;
  // Insert enough entries to force several splits.
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Range(i + 1, 1, i + 1, 1), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_GT(tree.HeightForTesting(), 1);
  EXPECT_TRUE(tree.CheckInvariantsForTesting());

  // Every entry findable.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(tree.AnyOverlap(Range(i + 1, 1, i + 1, 1))) << i;
  }
}

TEST(RTreeTest, EarlyExitVisitor) {
  RTree tree;
  for (int i = 0; i < 50; ++i) {
    tree.Insert(Range(1, i + 1, 1, i + 1), static_cast<uint64_t>(i));
  }
  int visits = 0;
  tree.ForEachOverlap(Range(1, 1, 1, 50), [&](const Range&, uint64_t) {
    ++visits;
    return visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(RTreeTest, ClearResets) {
  RTree tree;
  for (int i = 0; i < 30; ++i) {
    tree.Insert(Range(i + 1, i + 1, i + 2, i + 2), static_cast<uint64_t>(i));
  }
  tree.Clear();
  EXPECT_TRUE(tree.empty());
  EXPECT_FALSE(tree.AnyOverlap(Range(1, 1, 1000, 1000)));
  tree.Insert(Range(5, 5, 6, 6), 1);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.CheckInvariantsForTesting());
}

// ---------------------------------------------------------------------------
// Randomized differential test against a brute-force oracle, parameterized
// over seeds and workload shapes.

struct WorkloadParam {
  int seed;
  int max_coord;    // coordinate universe size
  int max_extent;   // max rectangle width/height
  int ops;          // number of operations
  double remove_fraction;
};

class RTreeRandomizedTest : public ::testing::TestWithParam<WorkloadParam> {};

TEST_P(RTreeRandomizedTest, MatchesBruteForceOracle) {
  const WorkloadParam p = GetParam();
  std::mt19937 rng(p.seed);
  std::uniform_int_distribution<int> coord(1, p.max_coord);
  std::uniform_int_distribution<int> extent(0, p.max_extent - 1);
  std::uniform_real_distribution<double> action(0.0, 1.0);

  RTree tree;
  std::vector<std::pair<Range, uint64_t>> oracle;
  uint64_t next_id = 0;

  auto random_box = [&] {
    int c = coord(rng), r = coord(rng);
    return Range(c, r, std::min(c + extent(rng), p.max_coord + p.max_extent),
                 std::min(r + extent(rng), p.max_coord + p.max_extent));
  };

  for (int op = 0; op < p.ops; ++op) {
    if (!oracle.empty() && action(rng) < p.remove_fraction) {
      size_t idx = static_cast<size_t>(rng() % oracle.size());
      auto [box, id] = oracle[idx];
      ASSERT_TRUE(tree.Remove(box, id));
      oracle.erase(oracle.begin() + static_cast<ptrdiff_t>(idx));
    } else {
      Range box = random_box();
      tree.Insert(box, next_id);
      oracle.emplace_back(box, next_id);
      ++next_id;
    }
    ASSERT_EQ(tree.size(), oracle.size());

    // Every few operations, cross-check a random overlap query and the
    // structural invariants.
    if (op % 7 == 0) {
      Range query = random_box();
      std::vector<uint64_t> got;
      tree.SearchOverlap(query, &got);
      std::vector<uint64_t> expected;
      for (const auto& [box, id] : oracle) {
        if (box.Overlaps(query)) expected.push_back(id);
      }
      std::sort(got.begin(), got.end());
      std::sort(expected.begin(), expected.end());
      ASSERT_EQ(got, expected) << "query " << query.ToString() << " at op "
                               << op;
    }
    if (op % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariantsForTesting()) << "op " << op;
    }
  }
  EXPECT_TRUE(tree.CheckInvariantsForTesting());

  // Drain the tree and verify emptiness.
  while (!oracle.empty()) {
    auto [box, id] = oracle.back();
    oracle.pop_back();
    ASSERT_TRUE(tree.Remove(box, id));
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.CheckInvariantsForTesting());
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, RTreeRandomizedTest,
    ::testing::Values(
        WorkloadParam{101, 20, 4, 400, 0.2},    // dense small universe
        WorkloadParam{202, 1000, 50, 400, 0.2},  // sparse
        WorkloadParam{303, 50, 1, 400, 0.3},     // point-heavy
        WorkloadParam{404, 200, 200, 300, 0.25}, // large overlapping boxes
        WorkloadParam{505, 10000, 3, 500, 0.4},  // high churn
        WorkloadParam{606, 30, 30, 300, 0.5}));  // remove-heavy

// Column-shaped entries mimic formula-graph vertices (tall 1-wide ranges).
TEST(RTreeTest, ColumnShapedWorkload) {
  RTree tree;
  std::vector<std::pair<Range, uint64_t>> oracle;
  uint64_t id = 0;
  for (int col = 1; col <= 20; ++col) {
    for (int start = 1; start <= 500; start += 100) {
      Range box(col, start, col, start + 250);
      tree.Insert(box, id);
      oracle.emplace_back(box, id);
      ++id;
    }
  }
  Range query(5, 200, 7, 210);
  std::vector<uint64_t> got;
  tree.SearchOverlap(query, &got);
  std::vector<uint64_t> expected;
  for (const auto& [box, eid] : oracle) {
    if (box.Overlaps(query)) expected.push_back(eid);
  }
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
  EXPECT_TRUE(tree.CheckInvariantsForTesting());
}

}  // namespace
}  // namespace taco
