// ThreadPool + WaitGroup semantics: keyed ordering, group completion
// (Wait observes every submitted task), reuse across batches, and
// concurrent groups on one pool — the contract the wave scheduler's
// barriers are built on.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/thread_pool.h"

namespace taco {
namespace {

TEST(WaitGroupTest, WaitReturnsImmediatelyWhenEmpty) {
  WaitGroup group;
  group.Wait();  // Must not block.
}

TEST(WaitGroupTest, WaitBlocksUntilAllTasksDone) {
  ThreadPool pool(4);
  WaitGroup group;
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit(&group, [&] { done.fetch_add(1); });
  }
  group.Wait();
  // Every task finished strictly before Wait returned.
  EXPECT_EQ(done.load(), kTasks);
}

TEST(WaitGroupTest, GroupIsReusableAcrossBatches) {
  ThreadPool pool(2);
  WaitGroup group;
  std::atomic<int> done{0};
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit(&group, [&] { done.fetch_add(1); });
    }
    group.Wait();
    // The barrier property the scheduler depends on: after Wait, the
    // batch is complete — no task of it is still in flight.
    EXPECT_EQ(done.load(), (batch + 1) * 8);
  }
}

TEST(WaitGroupTest, ConcurrentGroupsOnOnePoolAreIndependent) {
  ThreadPool pool(4);
  WaitGroup a, b;
  std::atomic<int> done_a{0}, done_b{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit(&a, [&] { done_a.fetch_add(1); });
    pool.Submit(&b, [&] { done_b.fetch_add(1); });
  }
  a.Wait();
  EXPECT_EQ(done_a.load(), 32);
  b.Wait();
  EXPECT_EQ(done_b.load(), 32);
}

TEST(WaitGroupTest, ManualAddDoneFromWorkerThreads) {
  WaitGroup group;
  group.Add(3);
  std::vector<std::thread> threads;
  std::atomic<int> done{0};
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      done.fetch_add(1);
      group.Done();
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 3);
  for (auto& t : threads) t.join();
}

TEST(ThreadPoolTest, KeyedTasksKeepSubmissionOrder) {
  ThreadPool pool(4);
  WaitGroup group;
  std::vector<int> order;  // Only the keyed worker touches it.
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    group.Add(1);
    pool.Submit("session-a", [&order, &group, i] {
      order.push_back(i);
      group.Done();
    });
  }
  group.Wait();
  ASSERT_EQ(order.size(), static_cast<size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, GroupSubmissionsSpreadAcrossWorkers) {
  // N consecutive group submissions must be able to run concurrently
  // (round-robin placement): N tasks that all wait for each other would
  // deadlock on a single queue, and complete only if spread out.
  constexpr int kWidth = 4;
  ThreadPool pool(kWidth);
  WaitGroup group;
  std::atomic<int> arrived{0};
  for (int i = 0; i < kWidth; ++i) {
    pool.Submit(&group, [&] {
      arrived.fetch_add(1);
      // Spin until every task of the wave is running — only possible
      // when each landed on its own worker.
      while (arrived.load() < kWidth) std::this_thread::yield();
    });
  }
  group.Wait();
  EXPECT_EQ(arrived.load(), kWidth);
}

TEST(ThreadPoolTest, DestructorDrainsQueues) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  }  // ~ThreadPool drains, then joins.
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace taco
