// GroupCommitter unit tests: ticket resolution, round coalescing, fsync
// failure propagation (and recovery on the next round), Drain semantics
// (flush-then-forget), destructor behavior with work still queued, and a
// multi-threaded hammer that runs the full Enqueue/Wait/Drain surface
// concurrently (the TSan job runs this binary).

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "store/group_commit.h"

namespace taco {
namespace {

std::string TempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

/// An open scratch file the committer can genuinely fsync.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& stem) : path_(TempPath(stem)) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  ~ScratchFile() {
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
  }
  void Append(std::string_view data) {
    ASSERT_EQ(::write(fd_, data.data(), data.size()),
              static_cast<ssize_t>(data.size()));
  }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Collects GroupFlushStats thread-safely (the observer fires on the
/// committer thread while the test thread asserts).
class FlushLog {
 public:
  GroupCommitOptions Options(uint32_t max_delay_us = 0) {
    GroupCommitOptions options;
    options.max_delay_us = max_delay_us;
    options.observer = [this](const GroupFlushStats& stats) {
      std::lock_guard<std::mutex> lock(mu_);
      flushes_.push_back(stats);
    };
    return options;
  }
  std::vector<GroupFlushStats> Flushes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return flushes_;
  }
  uint64_t TotalAppends() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const auto& f : flushes_) total += f.appends;
    return total;
  }

 private:
  mutable std::mutex mu_;
  std::vector<GroupFlushStats> flushes_;
};

TEST(GroupCommitTest, UnarmedTicketWaitsAsImmediateOk) {
  GroupCommitTicket ticket;
  EXPECT_FALSE(ticket.armed());
  EXPECT_TRUE(ticket.Wait().ok());
}

TEST(GroupCommitTest, SingleEnqueueFlushesAndResolves) {
  ScratchFile file("gc_single");
  ASSERT_GE(file.fd(), 0);
  FlushLog log;
  GroupCommitter committer(log.Options());
  file.Append("record");
  GroupCommitTicket ticket = committer.Enqueue(&file, file.fd(), file.path());
  ASSERT_TRUE(ticket.armed());
  Status flushed = ticket.Wait();
  EXPECT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_EQ(log.TotalAppends(), 1u);
}

TEST(GroupCommitTest, DelayWindowCoalescesConcurrentAppendsIntoOneFlush) {
  ScratchFile file("gc_coalesce");
  ASSERT_GE(file.fd(), 0);
  FlushLog log;
  // A generous window: every enqueue below lands well inside it, so the
  // round MUST cover all of them (the assertion is about batching, not
  // timing luck).
  GroupCommitter committer(log.Options(/*max_delay_us=*/200000));
  constexpr int kAppends = 5;
  std::vector<GroupCommitTicket> tickets;
  for (int i = 0; i < kAppends; ++i) {
    file.Append("r");
    tickets.push_back(committer.Enqueue(&file, file.fd(), file.path()));
  }
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket.Wait().ok());
  }
  auto flushes = log.Flushes();
  ASSERT_EQ(flushes.size(), 1u);
  EXPECT_EQ(flushes[0].appends, static_cast<uint64_t>(kAppends));
  EXPECT_TRUE(flushes[0].ok);
}

TEST(GroupCommitTest, RoundIssuesOneFsyncPerDistinctFile) {
  ScratchFile a("gc_file_a");
  ScratchFile b("gc_file_b");
  ASSERT_GE(a.fd(), 0);
  ASSERT_GE(b.fd(), 0);
  FlushLog log;
  GroupCommitter committer(log.Options(/*max_delay_us=*/200000));
  a.Append("ra");
  b.Append("rb");
  a.Append("ra");
  GroupCommitTicket ta1 = committer.Enqueue(&a, a.fd(), a.path());
  GroupCommitTicket tb = committer.Enqueue(&b, b.fd(), b.path());
  GroupCommitTicket ta2 = committer.Enqueue(&a, a.fd(), a.path());
  EXPECT_TRUE(ta1.Wait().ok());
  EXPECT_TRUE(tb.Wait().ok());
  EXPECT_TRUE(ta2.Wait().ok());
  auto flushes = log.Flushes();
  ASSERT_EQ(flushes.size(), 2u);  // One per file, not one per append.
  uint64_t a_appends = 0, b_appends = 0;
  for (const auto& f : flushes) {
    if (f.path == a.path()) a_appends += f.appends;
    if (f.path == b.path()) b_appends += f.appends;
  }
  EXPECT_EQ(a_appends, 2u);
  EXPECT_EQ(b_appends, 1u);
}

TEST(GroupCommitTest, FsyncFailureFailsTheBatchButNotTheNextOne) {
  ScratchFile file("gc_badfd");
  ASSERT_GE(file.fd(), 0);
  FlushLog log;
  GroupCommitter committer(log.Options());
  // -1 is never a valid descriptor, so this round's fsync fails.
  GroupCommitTicket bad = committer.Enqueue(&file, -1, file.path());
  Status failed = bad.Wait();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  // The failure is per-round: the next batch (good fd) succeeds.
  file.Append("r");
  GroupCommitTicket good = committer.Enqueue(&file, file.fd(), file.path());
  EXPECT_TRUE(good.Wait().ok());
  auto flushes = log.Flushes();
  ASSERT_GE(flushes.size(), 2u);
  EXPECT_FALSE(flushes.front().ok);
  EXPECT_TRUE(flushes.back().ok);
}

TEST(GroupCommitTest, DrainFlushesPendingAndForgetsTheFile) {
  ScratchFile file("gc_drain");
  ASSERT_GE(file.fd(), 0);
  FlushLog log;
  // A huge delay window: the committer is napping when Drain runs, so
  // Drain itself must flush the pending batch.
  GroupCommitter committer(log.Options(/*max_delay_us=*/1000000));
  file.Append("r");
  GroupCommitTicket ticket = committer.Enqueue(&file, file.fd(), file.path());
  Status drained = committer.Drain(&file);
  EXPECT_TRUE(drained.ok()) << drained.ToString();
  // The ticket resolved through the drain — Wait returns immediately.
  EXPECT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(log.TotalAppends(), 1u);
  // Draining an unknown/already-drained file is a no-op.
  EXPECT_TRUE(committer.Drain(&file).ok());
}

TEST(GroupCommitTest, DestructorFlushesQueuedWorkBeforeStopping) {
  ScratchFile file("gc_dtor");
  ASSERT_GE(file.fd(), 0);
  FlushLog log;
  GroupCommitTicket ticket;
  {
    GroupCommitter committer(log.Options(/*max_delay_us=*/1000000));
    file.Append("r");
    ticket = committer.Enqueue(&file, file.fd(), file.path());
    // Destruction races the nap: stop_ cuts the delay short and the run
    // loop flushes the pending batch on its way out.
  }
  EXPECT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(log.TotalAppends(), 1u);
}

TEST(GroupCommitTest, ConcurrentAppendersAcrossFilesAllResolve) {
  constexpr int kFiles = 4;
  constexpr int kThreadsPerFile = 4;
  constexpr int kAppendsPerThread = 25;
  std::vector<std::unique_ptr<ScratchFile>> files;
  for (int i = 0; i < kFiles; ++i) {
    files.push_back(
        std::make_unique<ScratchFile>("gc_hammer_" + std::to_string(i)));
    ASSERT_GE(files.back()->fd(), 0);
  }
  FlushLog log;
  std::atomic<uint64_t> acked{0};
  {
    GroupCommitter committer(log.Options());
    std::vector<std::thread> threads;
    for (int f = 0; f < kFiles; ++f) {
      for (int t = 0; t < kThreadsPerFile; ++t) {
        threads.emplace_back([&, f] {
          ScratchFile& file = *files[f];
          for (int i = 0; i < kAppendsPerThread; ++i) {
            GroupCommitTicket ticket =
                committer.Enqueue(&file, file.fd(), file.path());
            ASSERT_TRUE(ticket.Wait().ok());
            acked.fetch_add(1);
          }
        });
      }
    }
    // Rotation-style churn while appenders run: drain one file mid-way,
    // letting later enqueues re-register it.
    committer.Drain(files[0].get());
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(acked.load(),
            static_cast<uint64_t>(kFiles * kThreadsPerFile *
                                  kAppendsPerThread));
  // Every acked append was covered by some observed flush.
  EXPECT_EQ(log.TotalAppends(), acked.load());
  // Coalescing actually happened: far fewer fsyncs than appends (each
  // round covers every waiter that queued behind the previous round).
  EXPECT_LT(log.Flushes().size(), acked.load());
}

}  // namespace
}  // namespace taco
