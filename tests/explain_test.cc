// EXPLAIN dry-run planner (RecalcEngine::Explain / RecalcScheduler::Plan)
// against what the real recalc then does.
//
// The planner's whole contract is "guaranteed to match a subsequent
// Execute on the same sheet + dirty set wave-for-wave" — so every suite
// here explains an edit first and then performs it, asserting the plan
// predicted the pass the engine actually ran.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "sched/recalc_scheduler.h"
#include "sched/thread_pool.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

std::unique_ptr<DependencyGraph> MakeGraph(bool taco) {
  if (taco) return std::make_unique<TacoGraph>();
  return std::make_unique<NoCompGraph>();
}

/// Sheet + graph + engine, optionally wired to a wave scheduler.
struct Rig {
  Rig(bool taco, RecalcExecutor* executor)
      : graph(MakeGraph(taco)), engine(&sheet, graph.get()) {
    if (executor != nullptr) {
      engine.set_executor(executor);
      engine.set_mode(RecalcMode::kParallel);
    }
  }
  Sheet sheet;
  std::unique_ptr<DependencyGraph> graph;
  RecalcEngine engine;
};

/// No serial fast path, every wave dispatched — tiny workloads still
/// exercise the planner's wave machinery.
SchedulerOptions EagerOptions() {
  SchedulerOptions options;
  options.threads = 3;
  options.min_parallel_cells = 1;
  options.min_parallel_wave = 1;
  return options;
}

class ExplainTest : public ::testing::TestWithParam<bool> {};

TEST_P(ExplainTest, FanOutPlansOneWaveAndExecutionAgrees) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);

  constexpr int kRows = 200;
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 10.0).ok());
  EditBatch setup;
  for (int r = 1; r <= kRows; ++r) {
    setup.push_back(Edit::SetFormula(Cell{2, r}, "$A$1*" + std::to_string(r)));
  }
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_TRUE(info.parallel_active);
  EXPECT_EQ(info.seeds.size(), 1u);
  EXPECT_EQ(info.dirty_cells, static_cast<uint64_t>(kRows));
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kCellGranular);
  EXPECT_FALSE(info.plan.decision.empty());
  EXPECT_EQ(info.plan.dirty_formulas, static_cast<uint64_t>(kRows));
  EXPECT_EQ(info.plan.cycle_cells, 0u);
  // Independent dependents: the whole dirty set is one wave.
  ASSERT_EQ(info.plan.waves(), 1u);
  EXPECT_EQ(info.plan.wave_cells[0], static_cast<uint64_t>(kRows));
  EXPECT_EQ(info.plan.max_wave_cells(), static_cast<uint64_t>(kRows));

  // Now DO the edit the plan described. Wave-for-wave agreement.
  auto result = rig.engine.SetNumber(Cell{1, 1}, 3.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, info.plan.waves());
  EXPECT_EQ(result->max_wave_cells, info.plan.max_wave_cells());
  EXPECT_EQ(result->dirty_cells, info.dirty_cells);
  EXPECT_EQ(result->dirty.size(), info.dirty.size());
  EXPECT_EQ(result->recalculated, info.plan.dirty_formulas);
}

TEST_P(ExplainTest, ChainPlansOneWavePerLinkAndExecutionAgrees) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);

  constexpr int kRows = 150;
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 1.0).ok());
  EditBatch setup;
  setup.push_back(Edit::SetFormula(Cell{2, 1}, "A1+1"));
  for (int r = 2; r <= kRows; ++r) {
    setup.push_back(
        Edit::SetFormula(Cell{2, r}, "B" + std::to_string(r - 1) + "+1"));
  }
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kCellGranular);
  // A pure chain: one single-cell wave per link.
  ASSERT_EQ(info.plan.waves(), static_cast<uint64_t>(kRows));
  for (uint64_t cells : info.plan.wave_cells) EXPECT_EQ(cells, 1u);
  EXPECT_EQ(info.plan.max_wave_cells(), 1u);
  EXPECT_EQ(info.plan.cycle_cells, 0u);

  auto result = rig.engine.SetNumber(Cell{1, 1}, 5.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, info.plan.waves());
  EXPECT_EQ(result->max_wave_cells, info.plan.max_wave_cells());
  EXPECT_EQ(result->recalculated, info.plan.dirty_formulas);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, kRows}), Value::Number(5.0 + kRows));
}

TEST_P(ExplainTest, CycleMembersNeverScheduleIntoWaves) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);

  // A1 <-> B1 cycle seeded off D1; no downstream, so the dirty set is
  // exactly the two cycle members — Kahn never readies either.
  ASSERT_TRUE(rig.engine.SetNumber(Cell{4, 1}, 1.0).ok());
  EditBatch setup;
  setup.push_back(Edit::SetFormula(Cell{1, 1}, "COUNT(B1)+D1*0"));
  setup.push_back(Edit::SetFormula(Cell{2, 1}, "COUNT(A1)+D1*0"));
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(4, 1, 4, 1));
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kCellGranular);
  EXPECT_EQ(info.plan.cycle_cells, 2u);
  EXPECT_EQ(info.plan.waves(), 0u);  // everything is a leftover
  EXPECT_EQ(info.plan.dirty_formulas, 2u);

  // Execution agrees: no waves dispatched, both cells evaluated in the
  // serial leftover pass with the serial #CYCLE!-swallowing outcome.
  auto result = rig.engine.SetNumber(Cell{4, 1}, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, 0u);
  EXPECT_EQ(result->recalculated, 2u);
}

TEST_P(ExplainTest, CycleDownstreamCountsTowardCycleCells) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);

  ASSERT_TRUE(rig.engine.SetNumber(Cell{4, 1}, 1.0).ok());
  EditBatch setup;
  setup.push_back(Edit::SetFormula(Cell{1, 1}, "COUNT(B1)+D1*0"));  // A1
  setup.push_back(Edit::SetFormula(Cell{2, 1}, "COUNT(A1)+D1*0"));  // B1
  setup.push_back(Edit::SetFormula(Cell{3, 1}, "A1+B1"));  // downstream
  setup.push_back(Edit::SetFormula(Cell{3, 2}, "D1*10"));  // acyclic bystander
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(4, 1, 4, 1));
  // The two members plus the dependent that can never become ready.
  EXPECT_EQ(info.plan.cycle_cells, 3u);
  // The bystander still schedules as a normal one-cell wave.
  ASSERT_EQ(info.plan.waves(), 1u);
  EXPECT_EQ(info.plan.wave_cells[0], 1u);

  auto result = rig.engine.SetNumber(Cell{4, 1}, 2.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, info.plan.waves());
  EXPECT_EQ(result->recalculated, 4u);
  EXPECT_EQ(rig.engine.GetValue(Cell{3, 2}), Value::Number(20.0));
}

TEST_P(ExplainTest, TinyDirtySetsPlanSerialInlineWithNamedThreshold) {
  ThreadPool pool(3);
  SchedulerOptions options;
  options.threads = 3;
  options.min_parallel_cells = 1000;
  RecalcScheduler scheduler(&pool, options);
  Rig rig(GetParam(), &scheduler);

  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 2.0).ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 1}, "A1*3").ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 2}, "B1+1").ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kSerialInline);
  // The decision token names the threshold that short-circuited.
  EXPECT_NE(info.plan.decision.find("min_parallel_cells"), std::string::npos)
      << info.plan.decision;
  EXPECT_EQ(info.plan.waves(), 0u);

  auto result = rig.engine.SetNumber(Cell{1, 1}, 4.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, 0u);
}

TEST_P(ExplainTest, EdgeBudgetFallbackPlansRangeGranular) {
  ThreadPool pool(3);
  SchedulerOptions options = EagerOptions();
  options.max_edges = 4;  // per-cell expansion aborts immediately
  RecalcScheduler scheduler(&pool, options);
  Rig rig(GetParam(), &scheduler);

  constexpr int kRows = 40;
  EditBatch setup;
  for (int r = 1; r <= kRows; ++r) {
    setup.push_back(Edit::SetNumber(Cell{1, r}, r * 1.0));
    setup.push_back(
        Edit::SetFormula(Cell{2, r}, "SUM($A$1:A" + std::to_string(r) + ")"));
    setup.push_back(
        Edit::SetFormula(Cell{3, r}, "B" + std::to_string(r) + "*2"));
  }
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kRangeGranular);
  EXPECT_FALSE(info.plan.decision.empty());
  EXPECT_GE(info.plan.waves(), 1u);

  auto result = rig.engine.SetNumber(Cell{1, 1}, 100.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, info.plan.waves());
  EXPECT_EQ(result->max_wave_cells, info.plan.max_wave_cells());
}

TEST_P(ExplainTest, CutoffPlansPerWaveEligibilityAndExecutionPrunes) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);
  rig.engine.set_cutoff(true);

  // Absorbing chain: B1 collapses A1 to 0/1, B2..B6 each add one. An
  // edit that doesn't flip the absorber changes nothing past wave 1.
  constexpr int kLinks = 6;
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 10.0).ok());
  EditBatch setup;
  setup.push_back(Edit::SetFormula(Cell{2, 1}, "IF(A1>100,1,0)"));
  for (int r = 2; r <= kLinks; ++r) {
    setup.push_back(
        Edit::SetFormula(Cell{2, r}, "B" + std::to_string(r - 1) + "+1"));
  }
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());
  // Warm the chain root: a freshly set formula's own cell is evaluated
  // lazily (only its dependents recalc), and a cell with no cached
  // prior can never be ruled unchanged.
  ASSERT_EQ(rig.engine.GetValue(Cell{2, 1}), Value::Number(0.0));
  ASSERT_EQ(rig.engine.GetValue(Cell{2, kLinks}), Value::Number(kLinks - 1.0));

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_TRUE(info.cutoff);
  EXPECT_TRUE(info.plan.cutoff);
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kCellGranular);
  ASSERT_EQ(info.plan.waves(), static_cast<uint64_t>(kLinks));
  // One eligibility figure per wave. B1 takes the seed directly, so
  // wave 1 can never prune; every later link is a pure chain cell.
  ASSERT_EQ(info.plan.wave_cutoff_eligible.size(), info.plan.wave_cells.size());
  EXPECT_EQ(info.plan.wave_cutoff_eligible[0], 0u);
  uint64_t eligible = 0;
  for (size_t i = 1; i < info.plan.wave_cutoff_eligible.size(); ++i) {
    EXPECT_EQ(info.plan.wave_cutoff_eligible[i], info.plan.wave_cells[i]);
    eligible += info.plan.wave_cutoff_eligible[i];
  }

  // Absorbed edit: B1 re-evaluates to the same 0, the rest prune. The
  // planner's eligibility is exactly the realized skip count here.
  auto result = rig.engine.SetNumber(Cell{1, 1}, 20.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, info.plan.waves());
  EXPECT_EQ(result->recalculated, 1u);
  EXPECT_EQ(result->cells_skipped_cutoff, eligible);
  EXPECT_EQ(result->recalculated + result->cells_skipped_cutoff,
            result->dirty_formulas);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, kLinks}),
            Value::Number(kLinks - 1.0));

  // Flipping the absorber re-evaluates the whole chain: eligibility was
  // only ever an upper bound.
  result = rig.engine.SetNumber(Cell{1, 1}, 500.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->recalculated, static_cast<uint64_t>(kLinks));
  EXPECT_EQ(result->cells_skipped_cutoff, 0u);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, kLinks}), Value::Number(kLinks * 1.0));

  // Cutoff off again: the plan drops the flag and the eligibility rows.
  rig.engine.set_cutoff(false);
  info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_FALSE(info.cutoff);
  EXPECT_FALSE(info.plan.cutoff);
  EXPECT_TRUE(info.plan.wave_cutoff_eligible.empty());
}

TEST_P(ExplainTest, SerialEngineCutoffPlansInlineAndStillPrunes) {
  // No executor: the engine's own wave-free cutoff path. The plan is
  // serial-inline (no wave rows to fill) but still carries the flag.
  Rig rig(GetParam(), nullptr);
  rig.engine.set_cutoff(true);

  constexpr int kLinks = 5;
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 10.0).ok());
  EditBatch setup;
  setup.push_back(Edit::SetFormula(Cell{2, 1}, "IF(A1>100,1,0)"));
  for (int r = 2; r <= kLinks; ++r) {
    setup.push_back(
        Edit::SetFormula(Cell{2, r}, "B" + std::to_string(r - 1) + "+1"));
  }
  ASSERT_TRUE(rig.engine.ApplyBatch(setup).ok());

  RecalcEngine::ExplainInfo info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_FALSE(info.parallel_active);
  EXPECT_TRUE(info.cutoff);
  EXPECT_TRUE(info.plan.cutoff);
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kSerialInline);
  EXPECT_TRUE(info.plan.wave_cutoff_eligible.empty());
  EXPECT_EQ(info.plan.dirty_formulas, static_cast<uint64_t>(kLinks));

  auto result = rig.engine.SetNumber(Cell{1, 1}, 20.0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->waves, 0u);  // no parallel waves were dispatched
  EXPECT_EQ(result->recalculated, 1u);
  EXPECT_EQ(result->cells_skipped_cutoff, static_cast<uint64_t>(kLinks - 1));
  EXPECT_EQ(result->recalculated + result->cells_skipped_cutoff,
            result->dirty_formulas);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, kLinks}),
            Value::Number(kLinks - 1.0));
}

TEST_P(ExplainTest, ExplainIsSideEffectFreeAndRepeatable) {
  ThreadPool pool(3);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);

  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 10.0).ok());
  for (int r = 1; r <= 20; ++r) {
    ASSERT_TRUE(
        rig.engine.SetFormula(Cell{2, r}, "$A$1+" + std::to_string(r)).ok());
  }
  Value before = rig.engine.GetValue(Cell{2, 5});
  uint64_t version_before = rig.engine.latest_version() != nullptr
                                ? rig.engine.latest_version()->id()
                                : 0;

  RecalcEngine::ExplainInfo first = rig.engine.Explain(Range(1, 1, 1, 1));
  RecalcEngine::ExplainInfo second = rig.engine.Explain(Range(1, 1, 1, 1));

  // Dry run: same answer twice, no value change, no version published.
  EXPECT_EQ(first.dirty_cells, second.dirty_cells);
  EXPECT_EQ(first.plan.wave_cells, second.plan.wave_cells);
  EXPECT_EQ(first.plan.decision, second.plan.decision);
  EXPECT_EQ(rig.engine.GetValue(Cell{2, 5}), before);
  uint64_t version_after = rig.engine.latest_version() != nullptr
                               ? rig.engine.latest_version()->id()
                               : 0;
  EXPECT_EQ(version_after, version_before);
}

TEST_P(ExplainTest, SerialEnginesReportSerialInlinePlans) {
  // No executor at all.
  Rig bare(GetParam(), nullptr);
  ASSERT_TRUE(bare.engine.SetNumber(Cell{1, 1}, 1.0).ok());
  ASSERT_TRUE(bare.engine.SetFormula(Cell{2, 1}, "A1*2").ok());
  RecalcEngine::ExplainInfo info = bare.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_FALSE(info.parallel_active);
  EXPECT_EQ(info.mode, RecalcMode::kSerial);
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kSerialInline);
  EXPECT_EQ(info.plan.decision, "no_executor");
  EXPECT_EQ(info.plan.dirty_formulas, 1u);

  // Executor plugged but mode switched back to serial: still inline.
  ThreadPool pool(2);
  RecalcScheduler scheduler(&pool, EagerOptions());
  Rig rig(GetParam(), &scheduler);
  rig.engine.set_mode(RecalcMode::kSerial);
  ASSERT_TRUE(rig.engine.SetNumber(Cell{1, 1}, 1.0).ok());
  ASSERT_TRUE(rig.engine.SetFormula(Cell{2, 1}, "A1*2").ok());
  info = rig.engine.Explain(Range(1, 1, 1, 1));
  EXPECT_FALSE(info.parallel_active);
  EXPECT_EQ(info.plan.granularity, RecalcPlan::Granularity::kSerialInline);
  EXPECT_EQ(info.plan.decision, "mode=serial");
}

INSTANTIATE_TEST_SUITE_P(Graphs, ExplainTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Taco" : "NoComp";
                         });

}  // namespace
}  // namespace taco
