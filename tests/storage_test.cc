// Storage-layer unit tests: the binary snapshot codec (round trips,
// corruption detection, load-size guards), the StorageEngine seam (text
// vs binary differential equivalence), and the write-ahead log (append /
// replay, rotation, torn-tail truncation at EVERY byte offset, interior
// corruption rejection).
//
// The randomized suites scale with TACO_FUZZ_TRIALS like the other fuzz
// tests (100 = tier-1 defaults).

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph_test_util.h"
#include "sheet/textio.h"
#include "store/bytes.h"
#include "store/checksum.h"
#include "store/snapshot.h"
#include "store/storage_engine.h"
#include "store/wal.h"

namespace taco {
namespace {

using test::FuzzTrials;

std::string TempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

void WriteFile(const std::string& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

/// Canonical textual form — the byte-level sheet comparator: two sheets
/// are equal iff their deterministic text serializations are.
std::string Canon(const Sheet& sheet) { return WriteSheetText(sheet); }

Sheet DemoSheet() {
  Sheet sheet;
  sheet.set_name("demo");
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 1}, 42.5).ok());
  EXPECT_TRUE(sheet.SetNumber(Cell{1, 2}, -0.125).ok());
  EXPECT_TRUE(sheet.SetText(Cell{2, 1}, "hello \"quoted\" world").ok());
  EXPECT_TRUE(sheet.SetText(Cell{2, 2}, "hello \"quoted\" world").ok());
  EXPECT_TRUE(sheet.SetBoolean(Cell{3, 1}, true).ok());
  EXPECT_TRUE(sheet.SetBoolean(Cell{3, 2}, false).ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 1}, "SUM(A1:A2)*2").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 2}, "SUM(A1:A2)*2").ok());
  EXPECT_TRUE(
      sheet.SetFormula(Cell{4, 3}, "IF(C1, $A$1, CONCAT(B1, \"x\"))").ok());
  EXPECT_TRUE(sheet.SetFormula(Cell{4, 4}, "-D1%+MAX(A1:B2)^2").ok());
  return sheet;
}

// ---------------------------------------------------------------------------
// Binary snapshot codec
// ---------------------------------------------------------------------------

TEST(BinarySnapshotTest, RoundTripsEveryContentKind) {
  Sheet sheet = DemoSheet();
  std::string blob = WriteSheetBinary(sheet);
  EXPECT_TRUE(LooksLikeBinarySnapshot(blob));
  auto loaded = ReadSheetBinary(blob);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Canon(*loaded), Canon(sheet));
  EXPECT_EQ(loaded->name(), "demo");
  EXPECT_EQ(loaded->formula_cell_count(), sheet.formula_cell_count());
}

TEST(BinarySnapshotTest, RoundTripsTheEmptySheet) {
  Sheet empty;
  auto loaded = ReadSheetBinary(WriteSheetBinary(empty));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->cell_count(), 0u);
}

TEST(BinarySnapshotTest, HandlesTextTheLineFormatCannot) {
  // Newlines and '#' openers would corrupt the .tsheet line format; the
  // binary format is length-prefixed and doesn't care.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetText(Cell{1, 1}, "line one\nline two").ok());
  ASSERT_TRUE(sheet.SetText(Cell{1, 2}, "# not a comment").ok());
  auto loaded = ReadSheetBinary(WriteSheetBinary(sheet));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->Get(Cell{1, 1})->text(), "line one\nline two");
  EXPECT_EQ(loaded->Get(Cell{1, 2})->text(), "# not a comment");
}

TEST(BinarySnapshotTest, SharedFormulasShareOneDecodedAst) {
  Sheet sheet;
  for (int r = 1; r <= 8; ++r) {
    ASSERT_TRUE(sheet.SetFormula(Cell{1, r}, "$A$10*2").ok());
  }
  auto loaded = ReadSheetBinary(WriteSheetBinary(sheet));
  ASSERT_TRUE(loaded.ok());
  const Expr* first = loaded->Get(Cell{1, 1})->formula().ast.get();
  for (int r = 2; r <= 8; ++r) {
    EXPECT_EQ(loaded->Get(Cell{1, r})->formula().ast.get(), first)
        << "identical formula texts should share one AST";
  }
}

TEST(BinarySnapshotTest, RejectsForeignAndTruncatedInput) {
  EXPECT_EQ(ReadSheetBinary("").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ReadSheetBinary("# tsheet v1\nA1 = 1\n").status().code(),
            StatusCode::kParseError);
  std::string blob = WriteSheetBinary(DemoSheet());
  // Truncation at every prefix length must fail cleanly — never crash,
  // never return a sheet.
  for (size_t len = 0; len < blob.size(); ++len) {
    auto result = ReadSheetBinary(std::string_view(blob).substr(0, len));
    ASSERT_FALSE(result.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST(BinarySnapshotTest, EverySingleByteCorruptionIsCaught) {
  std::string blob = WriteSheetBinary(DemoSheet());
  const std::string canon = Canon(DemoSheet());
  // Exhaustive over offsets, one deterministic bit flip each: whatever
  // byte is hit (magic, length field, CRC, payload), the load must fail
  // with a status — wrong data must never come back.
  for (size_t i = 0; i < blob.size(); ++i) {
    std::string corrupt = blob;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x41);
    auto result = ReadSheetBinary(corrupt);
    ASSERT_FALSE(result.ok()) << "corruption at byte " << i << " loaded";
  }
}

TEST(BinarySnapshotTest, FuzzRoundTripAndCorruption) {
  std::mt19937_64 rng(0xC0FFEE);
  for (int trial = 0, n = FuzzTrials(30); trial < n; ++trial) {
    // Random sparse sheet mixing every content kind, with formula reuse.
    Sheet sheet;
    std::uniform_int_distribution<int> coord(1, 40);
    std::uniform_int_distribution<int> kind(0, 4);
    int cells = 1 + static_cast<int>(rng() % 120);
    for (int i = 0; i < cells; ++i) {
      Cell cell{coord(rng), coord(rng)};
      switch (kind(rng)) {
        case 0:
          ASSERT_TRUE(
              sheet.SetNumber(cell, std::ldexp(double(rng() % 4096) - 2048,
                                               int(rng() % 24) - 12))
                  .ok());
          break;
        case 1: {
          std::string text;
          for (int c = 0, len = int(rng() % 12); c < len; ++c) {
            text.push_back(static_cast<char>('!' + rng() % 94));
          }
          ASSERT_TRUE(sheet.SetText(cell, text).ok());
          break;
        }
        case 2:
          ASSERT_TRUE(sheet.SetBoolean(cell, rng() % 2 == 0).ok());
          break;
        case 3:
          ASSERT_TRUE(sheet
                          .SetFormula(cell, "SUM(A1:B" +
                                                std::to_string(1 + rng() % 20) +
                                                ")+" +
                                                std::to_string(rng() % 100))
                          .ok());
          break;
        default:
          ASSERT_TRUE(sheet
                          .SetFormula(cell, "$A$" +
                                                std::to_string(1 + rng() % 20) +
                                                "*2")
                          .ok());
          break;
      }
    }
    std::string blob = WriteSheetBinary(sheet);
    auto loaded = ReadSheetBinary(blob);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(Canon(*loaded), Canon(sheet)) << "trial " << trial;

    // One random single-byte corruption: must fail with a status.
    std::string corrupt = blob;
    size_t at = rng() % corrupt.size();
    unsigned char delta = 1 + static_cast<unsigned char>(rng() % 255);
    corrupt[at] = static_cast<char>(corrupt[at] ^ delta);
    auto bad = ReadSheetBinary(corrupt);
    ASSERT_FALSE(bad.ok()) << "trial " << trial << ": flip of byte " << at
                           << " by 0x" << std::hex << int(delta)
                           << " still loaded";
  }
}

TEST(BinarySnapshotTest, RecordsAndReturnsTheBackendKey) {
  Sheet sheet = DemoSheet();
  std::string blob = WriteSheetBinary(sheet, "nocomp");
  std::string backend = "poison";  // Must be overwritten, not appended.
  auto loaded = ReadSheetBinary(blob, &backend);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(backend, "nocomp");
  EXPECT_EQ(Canon(*loaded), Canon(sheet));
  // Unrecorded stays empty, and passing no out-param is fine.
  backend = "poison";
  ASSERT_TRUE(ReadSheetBinary(WriteSheetBinary(sheet), &backend).ok());
  EXPECT_TRUE(backend.empty());
  ASSERT_TRUE(ReadSheetBinary(blob).ok());
  // The file variants carry the key through disk too.
  std::string path = TempPath("taco_snapshot_backend.bsheet");
  ASSERT_TRUE(SaveSheetBinaryFile(sheet, path, "cellgraph").ok());
  backend.clear();
  auto from_disk =
      LoadSheetBinaryFile(path, kDefaultMaxSnapshotBytes, &backend);
  ASSERT_TRUE(from_disk.ok()) << from_disk.status().ToString();
  EXPECT_EQ(backend, "cellgraph");
  std::remove(path.c_str());
}

TEST(BinarySnapshotTest, VersionOneFilesReadWithAnEmptyBackend) {
  // Version 1 predates the backend field: its meta section ends after
  // the formula-cell count. Synthesize one by surgery on a v2 blob with
  // an EMPTY backend — drop the trailing empty string (a lone u32 zero
  // length prefix) from the meta payload, patch the version, and
  // recompute both CRCs. The reader must accept it and report no
  // backend rather than refusing old files.
  Sheet sheet = DemoSheet();
  std::string blob = WriteSheetBinary(sheet);

  auto put_u32 = [&](size_t at, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      blob[at + i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
    }
  };
  auto get_u64 = [&](size_t at) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= uint64_t(static_cast<unsigned char>(blob[at + i])) << (8 * i);
    }
    return v;
  };
  // Header: magic[0,4) version[4,8) sections[8,12) crc[12,16).
  put_u32(4, 1);
  put_u32(12, Crc32(std::string_view(blob).substr(0, 12)));
  // Meta section (id 1) header at 16: id[16,20) len[20,28) crc[28,32),
  // payload right after. Shrink it by the 4-byte empty-string suffix.
  uint64_t meta_len = get_u64(20);
  ASSERT_GE(meta_len, 4u);
  blob.erase(32 + size_t(meta_len) - 4, 4);
  put_u32(20, static_cast<uint32_t>(meta_len - 4));
  put_u32(24, 0);  // High half of the u64 length.
  put_u32(28, Crc32(std::string_view(blob).substr(32, meta_len - 4)));

  std::string backend = "poison";
  auto loaded = ReadSheetBinary(blob, &backend);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(backend.empty());
  EXPECT_EQ(Canon(*loaded), Canon(sheet));
}

// ---------------------------------------------------------------------------
// Storage engines
// ---------------------------------------------------------------------------

TEST(StorageEngineTest, MakeSelectsByNameCaseInsensitively) {
  EXPECT_EQ((*MakeStorageEngine("text"))->name(), "text");
  EXPECT_EQ((*MakeStorageEngine("BINARY"))->name(), "binary");
  EXPECT_EQ((*MakeStorageEngine(""))->name(), "text");
  EXPECT_EQ(MakeStorageEngine("xml").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StorageEngineTest, BackendsAreDifferentiallyEquivalent) {
  // The same sheet persisted through either backend and reloaded is the
  // same sheet — the text format is the oracle for the binary one.
  auto text = MakeStorageEngine("text").value();
  auto binary = MakeStorageEngine("binary").value();
  Sheet sheet = DemoSheet();

  std::string text_path = TempPath("storage_diff.tsheet");
  std::string binary_path = TempPath("storage_diff.tsnap");
  ASSERT_TRUE(text->SaveSnapshot(sheet, text_path).ok());
  ASSERT_TRUE(binary->SaveSnapshot(sheet, binary_path).ok());

  auto from_text = text->LoadSnapshot(text_path);
  auto from_binary = binary->LoadSnapshot(binary_path);
  ASSERT_TRUE(from_text.ok()) << from_text.status().ToString();
  ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
  // Both loaders name the sheet after the file stem; normalize it so the
  // comparison is about the CELLS.
  from_text->set_name(sheet.name());
  from_binary->set_name(sheet.name());
  EXPECT_EQ(Canon(*from_text), Canon(*from_binary));
  EXPECT_EQ(Canon(*from_text), Canon(sheet));

  std::remove(text_path.c_str());
  std::remove(binary_path.c_str());
}

TEST(StorageEngineTest, TextEngineDiagnosesBinaryFiles) {
  std::string path = TempPath("storage_mixup.tsnap");
  auto binary = MakeStorageEngine("binary").value();
  ASSERT_TRUE(binary->SaveSnapshot(DemoSheet(), path).ok());
  auto text = MakeStorageEngine("text").value();
  auto result = text->LoadSnapshot(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("binary snapshot"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(StorageEngineTest, OversizedFilesAreRefusedByBothBackends) {
  StorageOptions tiny;
  tiny.max_load_bytes = 16;
  std::string path = TempPath("storage_oversize");
  ASSERT_TRUE((*MakeStorageEngine("text"))
                  ->SaveSnapshot(DemoSheet(), path)
                  .ok());
  for (const char* kind : {"text", "binary"}) {
    auto engine = MakeStorageEngine(kind, tiny).value();
    auto result = engine->LoadSnapshot(path);
    ASSERT_FALSE(result.ok()) << kind;
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << kind;
    EXPECT_NE(result.status().message().find("over the load limit"),
              std::string::npos)
        << result.status().ToString();
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

EditBatch DemoEdits(int salt) {
  EditBatch edits;
  edits.push_back(Edit::SetNumber(Cell{1, salt % 50 + 1}, salt * 1.5));
  edits.push_back(Edit::SetText(Cell{2, 1}, "t" + std::to_string(salt)));
  edits.push_back(
      Edit::SetFormula(Cell{3, 1}, "A1+" + std::to_string(salt)));
  edits.push_back(Edit::ClearRange(Range(4, 1, 4, salt % 5 + 1)));
  return edits;
}

TEST(WalTest, AppendsReplayAndReportInOrder) {
  std::string path = TempPath("wal_roundtrip.wal");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path, WalOptions{}, nullptr, nullptr,
                                   {"/snap/base.tsnap", "taco"});
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE((*wal)->Append(DemoEdits(i)).ok());
    }
    EXPECT_EQ((*wal)->appended_records(), 5u);
  }
  auto header = WriteAheadLog::PeekHeader(path);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->snapshot_path, "/snap/base.tsnap");
  EXPECT_EQ(header->backend, "taco");

  std::vector<EditBatch> replayed;
  auto recovery = WriteAheadLog::Replay(path, [&](const EditBatch& batch) {
    replayed.push_back(batch);
    return Status::OK();
  });
  ASSERT_TRUE(recovery.ok()) << recovery.status().ToString();
  EXPECT_EQ(recovery->records, 5u);
  EXPECT_EQ(recovery->edits, 20u);
  EXPECT_FALSE(recovery->torn_tail);
  EXPECT_EQ(recovery->header.snapshot_path, "/snap/base.tsnap");
  EXPECT_EQ(recovery->header.backend, "taco");
  ASSERT_EQ(replayed.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    const EditBatch& expect = DemoEdits(i);
    ASSERT_EQ(replayed[i].size(), expect.size());
    for (size_t j = 0; j < expect.size(); ++j) {
      EXPECT_EQ(replayed[i][j].kind, expect[j].kind);
      EXPECT_EQ(replayed[i][j].cell, expect[j].cell);
      EXPECT_EQ(replayed[i][j].range, expect[j].range);
      EXPECT_EQ(replayed[i][j].number, expect[j].number);
      EXPECT_EQ(replayed[i][j].text, expect[j].text);
    }
  }
  std::remove(path.c_str());
}

TEST(WalTest, ReopenContinuesAppending) {
  std::string path = TempPath("wal_reopen.wal");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path, WalOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(DemoEdits(1)).ok());
  }
  {
    WalRecovery recovery;
    auto wal = WriteAheadLog::Open(path, WalOptions{}, nullptr, &recovery);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(recovery.records, 1u);
    ASSERT_TRUE((*wal)->Append(DemoEdits(2)).ok());
  }
  auto recovery = WriteAheadLog::Replay(path, nullptr);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->records, 2u);
  std::remove(path.c_str());
}

TEST(WalTest, RotateEmptiesTheLogAndRebindsTheSnapshot) {
  std::string path = TempPath("wal_rotate.wal");
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path, WalOptions{});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(DemoEdits(7)).ok());
  ASSERT_TRUE((*wal)->Rotate({"/snap/after.tsnap", "nocomp"}).ok());
  EXPECT_EQ((*wal)->appended_records(), 0u);
  // Appends continue against the NEW file.
  ASSERT_TRUE((*wal)->Append(DemoEdits(8)).ok());

  auto recovery = WriteAheadLog::Replay(path, nullptr);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery->header.snapshot_path, "/snap/after.tsnap");
  EXPECT_EQ(recovery->header.backend, "nocomp");
  EXPECT_EQ(recovery->records, 1u);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailTruncatesAtEveryOffsetInteriorStaysIntact) {
  // Build a log of 4 records, remembering where each record ends. Then
  // simulate a crash at EVERY byte offset: replay must recover exactly
  // the records wholly before the cut — silently — and an Open at that
  // cut must leave a log that keeps appending correctly.
  std::string path = TempPath("wal_torn.wal");
  std::remove(path.c_str());
  std::vector<uint64_t> record_end;
  {
    auto wal = WriteAheadLog::Open(path, WalOptions{});
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*wal)->Append(DemoEdits(i)).ok());
      record_end.push_back((*wal)->bytes());
    }
  }
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  // Cuts start at the end of the header: appends are the only in-place
  // writes, so a real crash can only tear a record — the header is
  // written atomically via temp+rename. A header-only log of the same
  // (empty) snapshot path tells us where the records begin.
  uint64_t header_bytes = 0;
  {
    std::string probe_path = TempPath("wal_torn_probe.wal");
    std::remove(probe_path.c_str());
    auto probe = WriteAheadLog::Open(probe_path, WalOptions{});
    ASSERT_TRUE(probe.ok());
    header_bytes = (*probe)->bytes();
    std::remove(probe_path.c_str());
  }

  for (uint64_t cut = header_bytes; cut <= full.size(); ++cut) {
    WriteFile(path, std::string_view(full).substr(0, cut));
    uint64_t expect_records = 0;
    for (uint64_t end : record_end) {
      if (end <= cut) ++expect_records;
    }
    auto recovery = WriteAheadLog::Replay(path, nullptr);
    ASSERT_TRUE(recovery.ok())
        << "cut at " << cut << ": " << recovery.status().ToString();
    EXPECT_EQ(recovery->records, expect_records) << "cut at " << cut;
    bool at_boundary =
        cut == header_bytes ||
        (expect_records > 0 && cut == record_end[expect_records - 1]);
    EXPECT_EQ(recovery->torn_tail, !at_boundary) << "cut at " << cut;
  }

  // Open at a torn offset truncates, and the log keeps working.
  WriteFile(path, std::string_view(full).substr(0, record_end[1] + 3));
  {
    WalRecovery recovery;
    auto wal = WriteAheadLog::Open(path, WalOptions{}, nullptr, &recovery);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(recovery.records, 2u);
    EXPECT_TRUE(recovery.torn_tail);
    ASSERT_TRUE((*wal)->Append(DemoEdits(9)).ok());
  }
  auto after = WriteAheadLog::Replay(path, nullptr);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->records, 3u);
  EXPECT_FALSE(after->torn_tail);
  std::remove(path.c_str());
}

TEST(WalTest, TornTailWithImplausibleLengthFieldIsStillTorn) {
  // A tail record extending past EOF is torn even when its length field
  // is absurd — classifying it as corruption would make the crash
  // permanently unrecoverable.
  std::string path = TempPath("wal_hugelen.wal");
  std::remove(path.c_str());
  {
    auto wal = WriteAheadLog::Open(path, WalOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(DemoEdits(0)).ok());
  }
  {
    // Hand-append a frame header claiming a 1 GB payload, then nothing.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    std::string frame;
    ByteWriter w(&frame);
    w.U32(1u << 30);
    w.U32(0xDEADBEEF);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  WalRecovery recovery;
  auto wal = WriteAheadLog::Open(path, WalOptions{}, nullptr, &recovery);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(recovery.records, 1u);
  EXPECT_TRUE(recovery.torn_tail);
  std::remove(path.c_str());
}

TEST(WalTest, InteriorCorruptionIsRejectedNotReplayed) {
  std::string path = TempPath("wal_corrupt.wal");
  std::remove(path.c_str());
  uint64_t first_record_end = 0;
  {
    auto wal = WriteAheadLog::Open(path, WalOptions{});
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(DemoEdits(0)).ok());
    first_record_end = (*wal)->bytes();
    ASSERT_TRUE((*wal)->Append(DemoEdits(1)).ok());
  }
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  // Flip a payload byte of record 1 (not the last record): DataLoss.
  std::string corrupt = full;
  corrupt[first_record_end - 2] =
      static_cast<char>(corrupt[first_record_end - 2] ^ 0x5A);
  WriteFile(path, corrupt);
  auto replay = WriteAheadLog::Replay(path, nullptr);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kDataLoss);
  // Open refuses identically — it must not truncate valid interior data.
  auto opened = WriteAheadLog::Open(path, WalOptions{});
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kDataLoss);

  // The SAME flip in the FINAL record is a torn overwrite: truncated.
  std::string torn = full;
  torn[full.size() - 2] = static_cast<char>(torn[full.size() - 2] ^ 0x5A);
  WriteFile(path, torn);
  auto recovered = WriteAheadLog::Replay(path, nullptr);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->records, 1u);
  EXPECT_TRUE(recovered->torn_tail);
  std::remove(path.c_str());
}

TEST(WalTest, ApplyEditToSheetMatchesDirectApplication) {
  Sheet direct, replayed;
  EditBatch edits = DemoEdits(3);
  for (const Edit& edit : edits) {
    ASSERT_TRUE(ApplyEditToSheet(&replayed, edit).ok());
  }
  ASSERT_TRUE(direct.SetNumber(edits[0].cell, edits[0].number).ok());
  ASSERT_TRUE(direct.SetText(edits[1].cell, edits[1].text).ok());
  ASSERT_TRUE(direct.SetFormula(edits[2].cell, edits[2].text).ok());
  ASSERT_TRUE(direct.ClearRange(edits[3].range).ok());
  EXPECT_EQ(Canon(direct), Canon(replayed));
}

// ---------------------------------------------------------------------------
// textio guard (the text-path half of the oversized-input satellite)
// ---------------------------------------------------------------------------

TEST(TextioGuardTest, LoadSheetFileRefusesOversizedFiles) {
  std::string path = TempPath("textio_oversize.tsheet");
  ASSERT_TRUE(SaveSheetFile(DemoSheet(), path).ok());
  auto result = LoadSheetFile(path, /*max_bytes=*/8);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  // The default limit is far above any real sheet: same file loads.
  EXPECT_TRUE(LoadSheetFile(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace taco
