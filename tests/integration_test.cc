// End-to-end integration tests: full pipelines across modules
// (corpus -> .tsheet file -> parse -> graphs -> queries -> maintenance ->
// recalculation), plus boundary conditions the unit suites don't reach.

#include <filesystem>

#include <gtest/gtest.h>

#include "baselines/antifreeze.h"
#include "baselines/calcgraph.h"
#include "baselines/cellgraph.h"
#include "baselines/excellike.h"
#include "common/range_set.h"
#include "corpus/generator.h"
#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "graph_test_util.h"
#include "sheet/textio.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

using test::ToCellSet;

// ---------------------------------------------------------------------------
// Full pipeline: generate -> save -> load -> compress -> query -> modify.

TEST(IntegrationTest, CorpusFileRoundTripPreservesGraphSemantics) {
  CorpusProfile profile = CorpusProfile::Enron().Tiny();
  profile.seed = 4242;
  CorpusGenerator generator(profile);
  CorpusSheet original = generator.GenerateSheet(0);

  std::string path = ::testing::TempDir() + "/integration_roundtrip.tsheet";
  ASSERT_TRUE(SaveSheetFile(original.sheet, path).ok());
  auto loaded = LoadSheetFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  TacoGraph from_original, from_loaded;
  ASSERT_TRUE(BuildGraphFromSheet(original.sheet, &from_original).ok());
  ASSERT_TRUE(BuildGraphFromSheet(*loaded, &from_loaded).ok());
  // Same dependencies in the same column-major order produce the same
  // compressed graph.
  EXPECT_EQ(from_original.NumEdges(), from_loaded.NumEdges());
  EXPECT_EQ(from_original.NumRawDependencies(),
            from_loaded.NumRawDependencies());

  auto q = Range(original.max_dependents_cell);
  EXPECT_TRUE(SameCellSet(from_original.FindDependents(q),
                          from_loaded.FindDependents(q)));
}

// All six graph implementations agree on dependents for a corpus sheet
// (Antifreeze with a large-enough K to be exact here).
TEST(IntegrationTest, AllEnginesAgreeOnCorpusSheet) {
  CorpusProfile profile = CorpusProfile::Enron().Tiny();
  profile.seed = 31337;
  profile.mix.noise = 0.0;
  CorpusSheet cs = CorpusGenerator(profile).GenerateSheet(1);
  std::vector<Dependency> deps = CollectDependencies(cs.sheet);

  TacoGraph taco;
  NoCompGraph nocomp;
  CellGraph cellgraph;
  CalcGraph calcgraph;
  ExcelLikeGraph excel;
  AntifreezeGraph antifreeze(/*max_bounding_ranges=*/1000);
  std::vector<DependencyGraph*> graphs = {&taco,      &nocomp, &cellgraph,
                                          &calcgraph, &excel,  &antifreeze};
  for (DependencyGraph* g : graphs) {
    for (const Dependency& d : deps) {
      ASSERT_TRUE(g->AddDependency(d).ok()) << g->Name();
    }
  }

  for (const Cell& query :
       {cs.max_dependents_cell, cs.longest_path_cell, Cell{1, 1}}) {
    auto expected = ToCellSet(nocomp.FindDependents(Range(query)));
    for (DependencyGraph* g : graphs) {
      EXPECT_EQ(ToCellSet(g->FindDependents(Range(query))), expected)
          << g->Name() << " dependents of " << query.ToString();
    }
  }
}

// Maintenance keeps all engines in agreement.
TEST(IntegrationTest, EnginesAgreeAfterMaintenance) {
  CorpusProfile profile = CorpusProfile::Enron().Tiny();
  profile.seed = 99;
  CorpusSheet cs = CorpusGenerator(profile).GenerateSheet(2);
  std::vector<Dependency> deps = CollectDependencies(cs.sheet);

  TacoGraph taco;
  NoCompGraph nocomp;
  CellGraph cellgraph;
  ExcelLikeGraph excel;
  std::vector<DependencyGraph*> graphs = {&taco, &nocomp, &cellgraph,
                                          &excel};
  for (DependencyGraph* g : graphs) {
    for (const Dependency& d : deps) {
      ASSERT_TRUE(g->AddDependency(d).ok());
    }
  }
  // Clear three bands, then re-add a few dependencies.
  for (const Range& band : {Range(1, 5, 40, 9), Range(3, 1, 8, 200),
                            Range(10, 50, 60, 80)}) {
    for (DependencyGraph* g : graphs) {
      ASSERT_TRUE(g->RemoveFormulaCells(band).ok()) << g->Name();
    }
  }
  for (int i = 0; i < 5; ++i) {
    Dependency d;
    d.prec = Range(1, 1, 2, 3 + i);
    d.dep = Cell{50 + i, 7};
    for (DependencyGraph* g : graphs) {
      ASSERT_TRUE(g->AddDependency(d).ok());
    }
  }
  for (const Cell& query : {Cell{1, 1}, Cell{1, 2}, cs.max_dependents_cell}) {
    auto expected = ToCellSet(nocomp.FindDependents(Range(query)));
    for (DependencyGraph* g : graphs) {
      EXPECT_EQ(ToCellSet(g->FindDependents(Range(query))), expected)
          << g->Name() << " after maintenance, query " << query.ToString();
    }
  }
}

// Recalculation through a corpus sheet with values filled: both engines
// must produce identical values after a cascade of edits.
TEST(IntegrationTest, RecalcOnCorpusSheetMatchesAcrossGraphs) {
  CorpusProfile profile = CorpusProfile::Enron().Tiny();
  profile.seed = 7;
  profile.fill_values = true;
  CorpusSheet cs = CorpusGenerator(profile).GenerateSheet(0);

  auto run = [&](DependencyGraph* graph) {
    Sheet sheet = cs.sheet;  // engines mutate their own copy
    EXPECT_TRUE(BuildGraphFromSheet(sheet, graph).ok());
    RecalcEngine engine(&sheet, graph);
    std::vector<std::string> observed;
    // Edit a handful of cells in the used range and sample results.
    auto used = sheet.UsedRange();
    EXPECT_TRUE(used.has_value());
    for (int i = 0; i < 8; ++i) {
      Cell target{1 + (i * 3) % used->tail.col, 1 + (i * 7) % used->tail.row};
      auto result = engine.SetNumber(target, i * 101.0);
      EXPECT_TRUE(result.ok());
    }
    for (int col = 1; col <= used->tail.col; col += 3) {
      for (int row = 1; row <= used->tail.row; row += 11) {
        observed.push_back(engine.GetValue(Cell{col, row}).ToString());
      }
    }
    return observed;
  };

  TacoGraph taco;
  NoCompGraph nocomp;
  EXPECT_EQ(run(&taco), run(&nocomp));
}

// ---------------------------------------------------------------------------
// Boundary conditions

TEST(IntegrationBoundsTest, SheetCornersCompressAndQuery) {
  // Formulas in the last supported rows/columns.
  TacoGraph graph;
  for (int i = 0; i < 10; ++i) {
    Dependency d;
    d.prec = Range(Cell{kMaxCol - 1, kMaxRow - 9 + i});
    d.dep = Cell{kMaxCol, kMaxRow - 9 + i};
    ASSERT_TRUE(graph.AddDependency(d).ok());
  }
  EXPECT_EQ(graph.NumEdges(), 1u);  // compressed into one RR edge
  auto result =
      graph.FindDependents(Range(Cell{kMaxCol - 1, kMaxRow - 5}));
  EXPECT_EQ(CoveredCellCount(result), 1u);
}

TEST(IntegrationBoundsTest, WholeColumnReferenceRange) {
  // A formula aggregating a full-height column range.
  TacoGraph graph;
  Dependency d;
  d.prec = Range(1, 1, 1, kMaxRow);
  d.dep = Cell{2, 1};
  ASSERT_TRUE(graph.AddDependency(d).ok());
  auto result = graph.FindDependents(Range(Cell{1, 524288}));
  EXPECT_EQ(ToCellSet(result), (test::CellSet{{2, 1}}));
  auto precs = graph.FindPrecedents(Range(Cell{2, 1}));
  EXPECT_EQ(CoveredCellCount(precs), static_cast<uint64_t>(kMaxRow));
}

TEST(IntegrationBoundsTest, ManyParallelColumnsStressRTree) {
  // 300 independent compressed columns exercise R-tree splits and the
  // candidate search at scale.
  TacoGraph graph;
  for (int col = 1; col <= 300; col += 2) {
    for (int row = 1; row <= 50; ++row) {
      Dependency d;
      d.prec = Range(Cell{col, row});
      d.dep = Cell{col + 1, row};
      ASSERT_TRUE(graph.AddDependency(d).ok());
    }
  }
  EXPECT_EQ(graph.NumEdges(), 150u);
  for (int col = 1; col <= 300; col += 30) {
    auto result = graph.FindDependents(Range(Cell{col, 25}));
    EXPECT_EQ(ToCellSet(result), (test::CellSet{{col + 1, 25}})) << col;
  }
}

TEST(IntegrationBoundsTest, InterleavedInsertRemoveChurn) {
  // Insert/remove churn must not leak vertices or corrupt the index.
  TacoGraph graph;
  for (int round = 0; round < 20; ++round) {
    for (int row = 1; row <= 100; ++row) {
      Dependency d;
      d.prec = Range(Cell{1, row});
      d.dep = Cell{2, row};
      ASSERT_TRUE(graph.AddDependency(d).ok());
    }
    ASSERT_TRUE(graph.RemoveFormulaCells(Range(2, 1, 2, 100)).ok());
    ASSERT_EQ(graph.NumEdges(), 0u) << "round " << round;
    ASSERT_EQ(graph.NumVertices(), 0u) << "round " << round;
    ASSERT_EQ(graph.NumRawDependencies(), 0u) << "round " << round;
  }
}

TEST(IntegrationBoundsTest, SelfReferenceCycleHandledEverywhere) {
  // A formula referencing its own cell (a user error): the graphs must
  // store and traverse it without hanging; the evaluator reports #CYCLE!.
  Sheet sheet;
  ASSERT_TRUE(sheet.SetFormula(Cell{1, 1}, "A1+1").ok());
  TacoGraph taco;
  NoCompGraph nocomp;
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &taco).ok());
  ASSERT_TRUE(BuildGraphFromSheet(sheet, &nocomp).ok());
  EXPECT_EQ(ToCellSet(taco.FindDependents(Range(Cell{1, 1}))),
            ToCellSet(nocomp.FindDependents(Range(Cell{1, 1}))));
  Evaluator evaluator(&sheet);
  EXPECT_EQ(evaluator.EvaluateCell(Cell{1, 1}),
            Value::Error(EvalError::kCycle));
}

TEST(IntegrationBoundsTest, EmptyAndDegenerateQueries) {
  TacoGraph graph;
  // Queries on an empty graph.
  EXPECT_TRUE(graph.FindDependents(Range(1, 1, kMaxCol, kMaxRow)).empty());
  EXPECT_TRUE(graph.FindPrecedents(Range(Cell{1, 1})).empty());
  // Remove on an empty graph.
  EXPECT_TRUE(graph.RemoveFormulaCells(Range(1, 1, 10, 10)).ok());
  // Invalid inputs are rejected, not crashed on.
  Dependency bad;
  bad.prec = Range(5, 5, 1, 1);
  bad.dep = Cell{1, 1};
  EXPECT_FALSE(graph.AddDependency(bad).ok());
}

// Duplicated dependency insertions (the paper assumes a deduplicated
// stream; the implementation must still behave sensibly).
TEST(IntegrationBoundsTest, DuplicateDependencyInsertions) {
  TacoGraph taco;
  NoCompGraph nocomp;
  Dependency d;
  d.prec = Range(1, 1, 1, 3);
  d.dep = Cell{2, 1};
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(taco.AddDependency(d).ok());
    ASSERT_TRUE(nocomp.AddDependency(d).ok());
  }
  // Parallel edges exist but query results stay correct.
  EXPECT_EQ(ToCellSet(taco.FindDependents(Range(Cell{1, 2}))),
            ToCellSet(nocomp.FindDependents(Range(Cell{1, 2}))));
}

}  // namespace
}  // namespace taco
