// Ablation: the Algorithm 2 selection heuristics (column-first,
// special-pattern priority, dollar cues) versus naive first-valid
// selection — effect on compressed size and build time.

#include <cstdio>

#include "bench_util.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

struct Config {
  std::string name;
  TacoOptions options;
};

void Run(const CorpusProfile& profile) {
  auto sheets = LoadCorpus(profile);
  std::vector<std::vector<Dependency>> deps;
  for (const CorpusSheet& cs : sheets) {
    deps.push_back(CollectDependencies(cs.sheet));
  }

  std::vector<Config> configs;
  configs.push_back({"full heuristics", TacoOptions::Full()});
  configs.push_back({"first-valid (none)", TacoOptions::NoHeuristics()});
  {
    TacoOptions o;
    o.prefer_column_axis = false;
    configs.push_back({"no column priority", o});
  }
  {
    TacoOptions o;
    o.prefer_special_patterns = false;
    configs.push_back({"no special-pattern rule", o});
  }
  {
    TacoOptions o;
    o.use_dollar_cues = false;
    configs.push_back({"no dollar cues", o});
  }

  TablePrinter table({profile.name, "Total edges", "vs full", "Build (sum)"});
  uint64_t full_edges = 0;
  for (const Config& config : configs) {
    uint64_t edges = 0;
    double build_ms = 0;
    for (const auto& d : deps) {
      TacoGraph g{config.options};
      TimerMs t;
      for (const Dependency& dep : d) (void)g.AddDependency(dep);
      build_ms += t.ElapsedMs();
      edges += g.NumEdges();
    }
    if (config.name == "full heuristics") full_edges = edges;
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2f%%",
                  full_edges == 0
                      ? 0.0
                      : 100.0 * (static_cast<double>(edges) -
                                 static_cast<double>(full_edges)) /
                            static_cast<double>(full_edges));
    table.AddRow({config.name, std::to_string(edges), delta,
                  FormatMs(build_ms)});
  }
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Ablation: compression-selection heuristics",
              "Sec. IV-A design choices (DESIGN.md ablation index)");
  Run(BenchEnron());
  std::printf(
      "\nExpectation: disabling heuristics leaves correctness intact (the\n"
      "graph stays lossless) but yields equal-or-worse compression and can\n"
      "slow chain-heavy queries (special-pattern rule).\n");
  return 0;
}
