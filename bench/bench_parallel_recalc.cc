// Serial vs. wave-parallel recalculation across graph backends and
// dirty-subgraph shapes (the src/sched subsystem's headline numbers).
//
// Three corpus profiles, matching the region generators of src/corpus:
//   chain   running accumulators (RR-Chain): B[r] = B[r-1]+A[r]. The
//           dirty subgraph is one long path — zero wave parallelism,
//           so this row measures scheduler overhead, not speedup.
//   fanout  cumulative FR columns: B[r] = SUM($A$1:A[r]). Editing A1
//           dirties every formula and none depends on another — one
//           wide wave with strongly skewed per-cell cost (the strided
//           assignment's stress shape).
//   mixed   the synthetic Enron corpus generator's default region mix
//           (sliding windows, derived columns, VLOOKUP tables, chains),
//           edited at its max-dependents anchor.
//
// Modes: serial, then wave-parallel at 2/4/8 scheduler threads. The
// reported time is RecalcResult::eval_ms — the re-evaluation phase the
// scheduler parallelizes — with the FindDependents share shown
// separately (the paper's graph-query latency, unchanged by this layer).
//
// A second table measures value-change cutoff on absorbing workloads:
// the same chain/fanout shapes with an IF stage that collapses the
// edited value to a constant, so everything downstream of the absorber
// is dirty but unchanged — the shape cutoff exists for. The headline is
// the EVALUATED-CELL ratio (full/cutoff, from RecalcResult counters),
// which is machine-load-independent; wall clock is reported alongside.
//
//   TACO_BENCH_PROFILE=smoke|paper   scale preset (default: laptop)
//   TACO_BENCH_RECALC_REPS           timed repetitions per mode
//   TACO_BENCH_CUTOFF_DEPTH          absorber position in the cutoff
//                                    chain profile (default: rows/8)
//   TACO_BENCH_JSON                  JSON Lines sink for the cutoff
//                                    counters and timings

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "corpus/generator.h"
#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "sched/recalc_scheduler.h"
#include "sched/thread_pool.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

using namespace taco;
using namespace taco::bench;

namespace {

struct Scale {
  int chain_rows;
  int fanout_rows;
  int mixed_formulas;
  int reps;
};

Scale ActiveScale() {
  switch (ActiveBenchProfile()) {
    case BenchProfile::kSmoke: return {4000, 2000, 4000, 5};
    case BenchProfile::kPaper: return {60000, 6000, 60000, 9};
    case BenchProfile::kDefault: break;
  }
  return {20000, 4000, 20000, 7};
}

std::unique_ptr<DependencyGraph> MakeBackend(const std::string& name) {
  if (name == "taco") {
    return std::make_unique<TacoGraph>(TacoOptions::Full());
  }
  return std::make_unique<NoCompGraph>();
}

/// One prepared workload: a sheet+graph+engine and the cell whose edit
/// drives the timed recalcs.
struct Workload {
  Sheet sheet;
  std::unique_ptr<DependencyGraph> graph;
  std::unique_ptr<RecalcEngine> engine;
  Cell edit_cell;

  Workload() = default;

  void Finish(const std::string& backend) {
    graph = MakeBackend(backend);
    Status built = BuildGraphFromSheet(sheet, graph.get());
    if (!built.ok()) {
      std::fprintf(stderr, "graph build failed: %s\n",
                   built.ToString().c_str());
      std::exit(1);
    }
    engine = std::make_unique<RecalcEngine>(&sheet, graph.get());
  }
};

Workload MakeChain(int rows, const std::string& backend) {
  Workload w;
  (void)w.sheet.SetNumber(Cell{1, 1}, 1.0);
  (void)w.sheet.SetFormula(Cell{2, 1}, "A1+1");
  for (int r = 2; r <= rows; ++r) {
    (void)w.sheet.SetNumber(Cell{1, r}, r * 1.0);
    (void)w.sheet.SetFormula(Cell{2, r},
                             "B" + std::to_string(r - 1) + "+A" +
                                 std::to_string(r));
  }
  w.edit_cell = Cell{1, 1};
  w.Finish(backend);
  return w;
}

Workload MakeFanout(int rows, const std::string& backend) {
  Workload w;
  for (int r = 1; r <= rows; ++r) {
    (void)w.sheet.SetNumber(Cell{1, r}, r * 0.5);
    (void)w.sheet.SetFormula(Cell{2, r},
                             "SUM($A$1:A" + std::to_string(r) + ")");
  }
  w.edit_cell = Cell{1, 1};
  w.Finish(backend);
  return w;
}

Workload MakeMixed(int formulas, const std::string& backend) {
  CorpusProfile profile = CorpusProfile::Enron();
  profile.name = "MixedBench";
  profile.num_sheets = 1;
  profile.min_formulas_per_sheet = formulas;
  profile.max_formulas_per_sheet = formulas;
  profile.flat_sheet_probability = 0.0;  // Keep the anchor interesting.
  profile.fill_values = true;
  CorpusSheet generated = CorpusGenerator(profile).GenerateSheet(0);
  Workload w;
  w.sheet = std::move(generated.sheet);
  w.edit_cell = generated.max_dependents_cell;
  w.Finish(backend);
  return w;
}

/// Absorbing chain: the plain chain with an IF stage at `depth` that
/// collapses the running sum to 0/1. Alternating A1 edits change
/// B1..B[depth-1], the absorber re-evaluates to the same 0, and the
/// rows-depth links past it are dirty but value-unchanged — cutoff
/// should evaluate `depth` cells where a full pass evaluates `rows`.
Workload MakeAbsorbingChain(int rows, int depth, const std::string& backend) {
  Workload w;
  (void)w.sheet.SetNumber(Cell{1, 1}, 1.0);
  (void)w.sheet.SetFormula(Cell{2, 1}, "A1+1");
  for (int r = 2; r <= rows; ++r) {
    (void)w.sheet.SetNumber(Cell{1, r}, r * 1.0);
    if (r == depth) {
      (void)w.sheet.SetFormula(
          Cell{2, r}, "IF(B" + std::to_string(r - 1) + ">1E9,1,0)");
    } else {
      (void)w.sheet.SetFormula(Cell{2, r},
                               "B" + std::to_string(r - 1) + "+A" +
                                   std::to_string(r));
    }
  }
  w.edit_cell = Cell{1, 1};
  w.Finish(backend);
  return w;
}

/// Absorbing fanout: the FR column B feeds one absorber C1, and four
/// downstream columns (D..G) of cumulative SUMs gated on $C$1 fan out
/// from it. The downstream ranges start at $A$2, so an A1 edit reaches
/// them only through the absorber: full recalc re-runs all 4*rows O(r)
/// aggregates, cutoff prunes every one (rows+1 evaluated vs 5*rows+1) —
/// the expensive-downstream shape where cutoff wins wall clock, not
/// just evaluated-cell counts.
Workload MakeAbsorbingFanout(int rows, const std::string& backend) {
  Workload w;
  for (int r = 1; r <= rows; ++r) {
    (void)w.sheet.SetNumber(Cell{1, r}, r * 0.5);
    (void)w.sheet.SetFormula(Cell{2, r},
                             "SUM($A$1:A" + std::to_string(r) + ")");
  }
  (void)w.sheet.SetFormula(Cell{3, 1},
                           "IF(B" + std::to_string(rows) + ">1E9,1,0)");
  for (int col = 4; col <= 7; ++col) {
    (void)w.sheet.SetFormula(Cell{col, 1}, "$C$1*" + std::to_string(col));
    for (int r = 2; r <= rows; ++r) {
      (void)w.sheet.SetFormula(
          Cell{col, r}, "SUM($A$2:A" + std::to_string(r) + ")+$C$1");
    }
  }
  w.edit_cell = Cell{1, 1};
  w.Finish(backend);
  return w;
}

struct ModeResult {
  double eval_ms = 0;      // Mean re-evaluation phase.
  double find_ms = 0;      // Mean FindDependents phase.
  uint64_t dirty = 0;
  uint64_t waves = 0;
  uint64_t max_wave = 0;
  uint64_t recalculated = 0;  // Formula cells evaluated per edit.
  uint64_t skipped = 0;       // Cells pruned by cutoff per edit.
};

/// Runs `reps` timed edits (plus one warmup) in the engine's current
/// mode. Alternating values keep every rep's dirty work identical.
ModeResult RunMode(Workload* w, int reps) {
  ModeResult out;
  double value = 1000.0;
  auto edit = [&](double v) {
    auto result = w->engine->SetNumber(w->edit_cell, v);
    if (!result.ok()) {
      std::fprintf(stderr, "edit failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return *std::move(result);
  };
  edit(value);  // Warmup: populate lazy caches, settle the dirty shape.
  std::vector<double> eval_ms, find_ms;
  for (int rep = 0; rep < reps; ++rep) {
    value = value == 1000.0 ? 2000.0 : 1000.0;
    RecalcResult r = edit(value);
    eval_ms.push_back(r.eval_ms);
    find_ms.push_back(r.find_dependents_ms);
    out.dirty = r.dirty_cells;
    out.waves = r.waves;
    out.max_wave = r.max_wave_cells;
    out.recalculated = r.recalculated;
    out.skipped = r.cells_skipped_cutoff;
  }
  out.eval_ms = Mean(eval_ms);
  out.find_ms = Mean(find_ms);
  return out;
}

std::string Speedup(double serial_ms, double parallel_ms) {
  if (parallel_ms <= 0) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", serial_ms / parallel_ms);
  return buffer;
}

}  // namespace

int main() {
  PrintHeader("Parallel recalculation: serial vs. wave-scheduled",
              "src/sched RecalcScheduler; workload shapes after Sec. VI-E");
  Scale scale = ActiveScale();
  int reps = EnvInt("TACO_BENCH_RECALC_REPS", scale.reps);
  const std::vector<int> thread_sweep = {2, 4, 8};

  TablePrinter table({"profile", "graph", "dirty", "waves", "serial",
                      "2T", "4T", "8T", "find_ms"});

  struct ProfileDef {
    const char* name;
    Workload (*make)(int, const std::string&);
    int size;
  };
  const ProfileDef profiles[] = {
      {"chain", +[](int n, const std::string& b) { return MakeChain(n, b); },
       scale.chain_rows},
      {"fanout", +[](int n, const std::string& b) { return MakeFanout(n, b); },
       scale.fanout_rows},
      {"mixed", +[](int n, const std::string& b) { return MakeMixed(n, b); },
       scale.mixed_formulas},
  };

  for (const ProfileDef& profile : profiles) {
    for (const std::string backend : {"taco", "nocomp"}) {
      Workload w = profile.make(profile.size, backend);

      w.engine->set_mode(RecalcMode::kSerial);
      ModeResult serial = RunMode(&w, reps);

      std::vector<ModeResult> parallel;
      uint64_t waves = 0;
      for (int threads : thread_sweep) {
        ThreadPool pool(threads);
        SchedulerOptions options;
        options.threads = threads;
        RecalcScheduler scheduler(&pool, options);
        w.engine->set_executor(&scheduler);
        w.engine->set_mode(RecalcMode::kParallel);
        parallel.push_back(RunMode(&w, reps));
        waves = parallel.back().waves;
        // The scheduler dies with this scope; unplug it from the engine.
        w.engine->set_executor(nullptr);
        w.engine->set_mode(RecalcMode::kSerial);
      }

      table.AddRow({profile.name, backend, std::to_string(serial.dirty),
                    std::to_string(waves),
                    FormatMs(serial.eval_ms),
                    FormatMs(parallel[0].eval_ms) + " (" +
                        Speedup(serial.eval_ms, parallel[0].eval_ms) + ")",
                    FormatMs(parallel[1].eval_ms) + " (" +
                        Speedup(serial.eval_ms, parallel[1].eval_ms) + ")",
                    FormatMs(parallel[2].eval_ms) + " (" +
                        Speedup(serial.eval_ms, parallel[2].eval_ms) + ")",
                    FormatMs(serial.find_ms)});
    }
  }
  table.Print();
  std::printf(
      "\nTimes are the re-evaluation phase (RecalcResult::eval_ms), mean of "
      "%d reps.\nfind_ms is the FindDependents share of the same edits "
      "(unchanged by the scheduler).\nchain is wave-degenerate by "
      "construction: it measures scheduler overhead.\n",
      reps);

  // --- Value-change cutoff on absorbing workloads -----------------------
  std::printf("\nValue-change cutoff: absorbing workloads "
              "(full vs. cutoff recalc)\n\n");
  TablePrinter cutoff_table({"profile", "graph", "dirty", "full_eval",
                             "cut_eval", "skipped", "ratio", "full_ms",
                             "cut_ms", "cut_2T_ms"});

  auto run_cutoff = [&](const char* name, Workload* w) {
    // Full pass baseline, then the serial-engine cutoff path, then the
    // 2-thread wave-scheduled cutoff path — all on the same workload,
    // counters from the same RecalcResult the service reports from.
    w->engine->set_mode(RecalcMode::kSerial);
    ModeResult full = RunMode(w, reps);
    w->engine->set_cutoff(true);
    ModeResult cut = RunMode(w, reps);
    ModeResult cut2;
    {
      ThreadPool pool(2);
      SchedulerOptions options;
      options.threads = 2;
      RecalcScheduler scheduler(&pool, options);
      w->engine->set_executor(&scheduler);
      w->engine->set_mode(RecalcMode::kParallel);
      cut2 = RunMode(w, reps);
      w->engine->set_executor(nullptr);
      w->engine->set_mode(RecalcMode::kSerial);
    }
    w->engine->set_cutoff(false);

    double ratio = cut.recalculated > 0
                       ? double(full.recalculated) / double(cut.recalculated)
                       : 0.0;
    char ratio_str[32];
    std::snprintf(ratio_str, sizeof(ratio_str), "%.1fx", ratio);
    const std::string backend_name =
        w->graph->Name().empty() ? "?" : std::string(w->graph->Name());
    cutoff_table.AddRow({name, backend_name, std::to_string(full.dirty),
                         std::to_string(full.recalculated),
                         std::to_string(cut.recalculated),
                         std::to_string(cut.skipped), ratio_str,
                         FormatMs(full.eval_ms), FormatMs(cut.eval_ms),
                         FormatMs(cut2.eval_ms)});

    std::vector<std::pair<std::string, std::string>> labels = {
        {"profile", name}, {"graph", backend_name}};
    ReportJsonMetric("parallel_recalc",
                     {"cutoff_eval_ratio", ratio, "", labels});
    ReportJsonMetric("parallel_recalc", {"cutoff_cells_evaluated",
                                         double(cut.recalculated), "cells",
                                         labels});
    ReportJsonMetric("parallel_recalc", {"cutoff_cells_skipped",
                                         double(cut.skipped), "cells",
                                         labels});
    ReportJsonMetric("parallel_recalc",
                     {"cutoff_full_eval_ms", full.eval_ms, "ms", labels});
    ReportJsonMetric("parallel_recalc",
                     {"cutoff_eval_ms", cut.eval_ms, "ms", labels});
    ReportJsonMetric("parallel_recalc",
                     {"cutoff_eval_2t_ms", cut2.eval_ms, "ms", labels});
    return ratio;
  };

  const int chain_depth =
      EnvInt("TACO_BENCH_CUTOFF_DEPTH", std::max(1, scale.chain_rows / 8));
  double chain_ratio_min = 1e300;
  for (const std::string backend : {"taco", "nocomp"}) {
    Workload chain = MakeAbsorbingChain(scale.chain_rows, chain_depth, backend);
    chain_ratio_min =
        std::min(chain_ratio_min, run_cutoff("chain_absorb", &chain));
    Workload fanout = MakeAbsorbingFanout(scale.fanout_rows, backend);
    run_cutoff("fanout_absorb", &fanout);
  }
  cutoff_table.Print();
  std::printf(
      "\nratio is full_eval/cut_eval — evaluated-cell counts from "
      "RecalcResult, so it is\nexact and machine-load-independent; ms "
      "columns are the usual wall-clock means.\nchain absorber sits at row "
      "%d of %d (TACO_BENCH_CUTOFF_DEPTH).\n",
      chain_depth, scale.chain_rows);
  if (chain_ratio_min < 5.0) {
    std::printf("WARNING: chain_absorb ratio %.1fx below the 5x target "
                "(depth override in effect?)\n",
                chain_ratio_min);
  }
  return 0;
}
