// Serial vs. wave-parallel recalculation across graph backends and
// dirty-subgraph shapes (the src/sched subsystem's headline numbers).
//
// Three corpus profiles, matching the region generators of src/corpus:
//   chain   running accumulators (RR-Chain): B[r] = B[r-1]+A[r]. The
//           dirty subgraph is one long path — zero wave parallelism,
//           so this row measures scheduler overhead, not speedup.
//   fanout  cumulative FR columns: B[r] = SUM($A$1:A[r]). Editing A1
//           dirties every formula and none depends on another — one
//           wide wave with strongly skewed per-cell cost (the strided
//           assignment's stress shape).
//   mixed   the synthetic Enron corpus generator's default region mix
//           (sliding windows, derived columns, VLOOKUP tables, chains),
//           edited at its max-dependents anchor.
//
// Modes: serial, then wave-parallel at 2/4/8 scheduler threads. The
// reported time is RecalcResult::eval_ms — the re-evaluation phase the
// scheduler parallelizes — with the FindDependents share shown
// separately (the paper's graph-query latency, unchanged by this layer).
//
//   TACO_BENCH_PROFILE=smoke|paper   scale preset (default: laptop)
//   TACO_BENCH_RECALC_REPS           timed repetitions per mode

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "corpus/generator.h"
#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "sched/recalc_scheduler.h"
#include "sched/thread_pool.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

using namespace taco;
using namespace taco::bench;

namespace {

struct Scale {
  int chain_rows;
  int fanout_rows;
  int mixed_formulas;
  int reps;
};

Scale ActiveScale() {
  switch (ActiveBenchProfile()) {
    case BenchProfile::kSmoke: return {4000, 2000, 4000, 5};
    case BenchProfile::kPaper: return {60000, 6000, 60000, 9};
    case BenchProfile::kDefault: break;
  }
  return {20000, 4000, 20000, 7};
}

std::unique_ptr<DependencyGraph> MakeBackend(const std::string& name) {
  if (name == "taco") {
    return std::make_unique<TacoGraph>(TacoOptions::Full());
  }
  return std::make_unique<NoCompGraph>();
}

/// One prepared workload: a sheet+graph+engine and the cell whose edit
/// drives the timed recalcs.
struct Workload {
  Sheet sheet;
  std::unique_ptr<DependencyGraph> graph;
  std::unique_ptr<RecalcEngine> engine;
  Cell edit_cell;

  Workload() = default;

  void Finish(const std::string& backend) {
    graph = MakeBackend(backend);
    Status built = BuildGraphFromSheet(sheet, graph.get());
    if (!built.ok()) {
      std::fprintf(stderr, "graph build failed: %s\n",
                   built.ToString().c_str());
      std::exit(1);
    }
    engine = std::make_unique<RecalcEngine>(&sheet, graph.get());
  }
};

Workload MakeChain(int rows, const std::string& backend) {
  Workload w;
  (void)w.sheet.SetNumber(Cell{1, 1}, 1.0);
  (void)w.sheet.SetFormula(Cell{2, 1}, "A1+1");
  for (int r = 2; r <= rows; ++r) {
    (void)w.sheet.SetNumber(Cell{1, r}, r * 1.0);
    (void)w.sheet.SetFormula(Cell{2, r},
                             "B" + std::to_string(r - 1) + "+A" +
                                 std::to_string(r));
  }
  w.edit_cell = Cell{1, 1};
  w.Finish(backend);
  return w;
}

Workload MakeFanout(int rows, const std::string& backend) {
  Workload w;
  for (int r = 1; r <= rows; ++r) {
    (void)w.sheet.SetNumber(Cell{1, r}, r * 0.5);
    (void)w.sheet.SetFormula(Cell{2, r},
                             "SUM($A$1:A" + std::to_string(r) + ")");
  }
  w.edit_cell = Cell{1, 1};
  w.Finish(backend);
  return w;
}

Workload MakeMixed(int formulas, const std::string& backend) {
  CorpusProfile profile = CorpusProfile::Enron();
  profile.name = "MixedBench";
  profile.num_sheets = 1;
  profile.min_formulas_per_sheet = formulas;
  profile.max_formulas_per_sheet = formulas;
  profile.flat_sheet_probability = 0.0;  // Keep the anchor interesting.
  profile.fill_values = true;
  CorpusSheet generated = CorpusGenerator(profile).GenerateSheet(0);
  Workload w;
  w.sheet = std::move(generated.sheet);
  w.edit_cell = generated.max_dependents_cell;
  w.Finish(backend);
  return w;
}

struct ModeResult {
  double eval_ms = 0;      // Mean re-evaluation phase.
  double find_ms = 0;      // Mean FindDependents phase.
  uint64_t dirty = 0;
  uint64_t waves = 0;
  uint64_t max_wave = 0;
};

/// Runs `reps` timed edits (plus one warmup) in the engine's current
/// mode. Alternating values keep every rep's dirty work identical.
ModeResult RunMode(Workload* w, int reps) {
  ModeResult out;
  double value = 1000.0;
  auto edit = [&](double v) {
    auto result = w->engine->SetNumber(w->edit_cell, v);
    if (!result.ok()) {
      std::fprintf(stderr, "edit failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    return *std::move(result);
  };
  edit(value);  // Warmup: populate lazy caches, settle the dirty shape.
  std::vector<double> eval_ms, find_ms;
  for (int rep = 0; rep < reps; ++rep) {
    value = value == 1000.0 ? 2000.0 : 1000.0;
    RecalcResult r = edit(value);
    eval_ms.push_back(r.eval_ms);
    find_ms.push_back(r.find_dependents_ms);
    out.dirty = r.dirty_cells;
    out.waves = r.waves;
    out.max_wave = r.max_wave_cells;
  }
  out.eval_ms = Mean(eval_ms);
  out.find_ms = Mean(find_ms);
  return out;
}

std::string Speedup(double serial_ms, double parallel_ms) {
  if (parallel_ms <= 0) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2fx", serial_ms / parallel_ms);
  return buffer;
}

}  // namespace

int main() {
  PrintHeader("Parallel recalculation: serial vs. wave-scheduled",
              "src/sched RecalcScheduler; workload shapes after Sec. VI-E");
  Scale scale = ActiveScale();
  int reps = EnvInt("TACO_BENCH_RECALC_REPS", scale.reps);
  const std::vector<int> thread_sweep = {2, 4, 8};

  TablePrinter table({"profile", "graph", "dirty", "waves", "serial",
                      "2T", "4T", "8T", "find_ms"});

  struct ProfileDef {
    const char* name;
    Workload (*make)(int, const std::string&);
    int size;
  };
  const ProfileDef profiles[] = {
      {"chain", +[](int n, const std::string& b) { return MakeChain(n, b); },
       scale.chain_rows},
      {"fanout", +[](int n, const std::string& b) { return MakeFanout(n, b); },
       scale.fanout_rows},
      {"mixed", +[](int n, const std::string& b) { return MakeMixed(n, b); },
       scale.mixed_formulas},
  };

  for (const ProfileDef& profile : profiles) {
    for (const std::string backend : {"taco", "nocomp"}) {
      Workload w = profile.make(profile.size, backend);

      w.engine->set_mode(RecalcMode::kSerial);
      ModeResult serial = RunMode(&w, reps);

      std::vector<ModeResult> parallel;
      uint64_t waves = 0;
      for (int threads : thread_sweep) {
        ThreadPool pool(threads);
        SchedulerOptions options;
        options.threads = threads;
        RecalcScheduler scheduler(&pool, options);
        w.engine->set_executor(&scheduler);
        w.engine->set_mode(RecalcMode::kParallel);
        parallel.push_back(RunMode(&w, reps));
        waves = parallel.back().waves;
        // The scheduler dies with this scope; unplug it from the engine.
        w.engine->set_executor(nullptr);
        w.engine->set_mode(RecalcMode::kSerial);
      }

      table.AddRow({profile.name, backend, std::to_string(serial.dirty),
                    std::to_string(waves),
                    FormatMs(serial.eval_ms),
                    FormatMs(parallel[0].eval_ms) + " (" +
                        Speedup(serial.eval_ms, parallel[0].eval_ms) + ")",
                    FormatMs(parallel[1].eval_ms) + " (" +
                        Speedup(serial.eval_ms, parallel[1].eval_ms) + ")",
                    FormatMs(parallel[2].eval_ms) + " (" +
                        Speedup(serial.eval_ms, parallel[2].eval_ms) + ")",
                    FormatMs(serial.find_ms)});
    }
  }
  table.Print();
  std::printf(
      "\nTimes are the re-evaluation phase (RecalcResult::eval_ms), mean of "
      "%d reps.\nfind_ms is the FindDependents share of the same edits "
      "(unchanged by the scheduler).\nchain is wave-degenerate by "
      "construction: it measures scheduler overhead.\n",
      reps);
  return 0;
}
