// bench_net_throughput: client-driven throughput of the socket
// transport — N concurrent TCP clients hammering one taco_net
// SocketServer with the protocol mix a spreadsheet front end produces
// (mostly single edits, some reads, some batches), measuring end-to-end
// commands/second and per-command round-trip latency through the full
// stack: framing -> CommandProcessor -> session lock -> recalc ->
// response write. The serving-path cost the paper's latency argument is
// about, now with the network in the loop.
//
// Profiles (TACO_BENCH_PROFILE): smoke 2 clients x 300 commands,
// default 4 x 3000, paper 8 x 20000.
//
// TACO_BENCH_LOG_FILE=<path> attaches a structured logger (obs/log.h)
// to the service at the production-default info level — exactly what
// `taco_serve --log-file` gives you. The harness runs the bench with
// and without it and gates on the throughput delta
// (docs/observability.md: logging must cost <5% on the SET path).
// TACO_BENCH_LOG_LEVEL=debug additionally emits one op.apply event per
// mutation through the async sink — the worst-case emit-path stress,
// reported but not gated (on a single-core host the writer thread
// necessarily steals serving cycles).
//
// TACO_BENCH_NET_WAL_DIR=<dir> runs the durable variant: every mutating
// command is WAL-logged and fsynced before its response. With
// TACO_BENCH_NET_GROUP_COMMIT=1 the sessions share one committer thread
// (`taco_serve --group-commit`) — the on/off pair shows what group
// commit buys with the network in the loop.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/socket_client.h"
#include "net/socket_server.h"
#include "obs/log.h"
#include "service/workbook_service.h"

using namespace taco;
using namespace taco::bench;

namespace {

struct ClientResult {
  uint64_t commands = 0;
  uint64_t errors = 0;
  std::vector<double> latency_ms;
};

ClientResult DriveClient(uint16_t port, int index, int commands) {
  ClientResult result;
  SocketClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    result.errors = static_cast<uint64_t>(commands);
    return result;
  }
  std::string session = "bench" + std::to_string(index);
  result.latency_ms.reserve(static_cast<size_t>(commands) + 1);

  auto timed = [&](const std::string& command) {
    TimerMs timer;
    auto response = client.Call(command);
    result.latency_ms.push_back(timer.ElapsedMs());
    ++result.commands;
    if (!response.ok() || response->starts_with("ERR")) ++result.errors;
  };

  timed("OPEN " + session);
  for (int i = 0; i < commands; ++i) {
    int row = 1 + i % 40;
    switch (i % 10) {
      case 0:
        timed("FORMULA " + session + " H" + std::to_string(row) + " SUM(A" +
              std::to_string(row) + ":F" + std::to_string(row) + ")");
        break;
      case 1:
      case 2:
        timed("GET " + session + " H" + std::to_string(row));
        break;
      case 3:
        timed("BATCH " + session + " 4\nSET A" + std::to_string(row) +
              " 1\nSET B" + std::to_string(row) + " 2\nSET C" +
              std::to_string(row) + " 3\nSET D" + std::to_string(row) +
              " 4");
        break;
      default:
        timed("SET " + session + " A" + std::to_string(row) + " " +
              std::to_string(i));
        break;
    }
  }
  return result;
}

}  // namespace

int main() {
  PrintHeader("Socket transport throughput (taco_net)",
              "service layer; no paper figure");

  int clients = 4;
  int commands = 3000;
  switch (ActiveBenchProfile()) {
    case BenchProfile::kSmoke:
      clients = 2;
      commands = 300;
      break;
    case BenchProfile::kPaper:
      clients = 8;
      commands = 20000;
      break;
    case BenchProfile::kDefault:
      break;
  }
  clients = EnvInt("TACO_BENCH_NET_CLIENTS", clients);
  commands = EnvInt("TACO_BENCH_NET_COMMANDS", commands);

  std::unique_ptr<obs::Logger> logger;
  const char* log_file = std::getenv("TACO_BENCH_LOG_FILE");
  if (log_file != nullptr && log_file[0] != '\0') {
    obs::Logger::Options log_options;
    log_options.path = log_file;
    if (const char* level = std::getenv("TACO_BENCH_LOG_LEVEL")) {
      if (!obs::ParseLogLevel(level, &log_options.level)) {
        std::fprintf(stderr, "bad TACO_BENCH_LOG_LEVEL %s\n", level);
        return 1;
      }
    }
    logger = obs::Logger::Open(log_options);
    if (logger == nullptr) {
      std::fprintf(stderr, "cannot open TACO_BENCH_LOG_FILE %s\n", log_file);
      return 1;
    }
  }

  WorkbookServiceOptions service_options;
  service_options.logger = logger.get();
  std::string wal_dir;
  if (const char* dir = std::getenv("TACO_BENCH_NET_WAL_DIR");
      dir != nullptr && dir[0] != '\0') {
    wal_dir = dir;
    service_options.wal_dir = wal_dir;
    service_options.group_commit = EnvInt("TACO_BENCH_NET_GROUP_COMMIT", 0) != 0;
  }
  WorkbookService service(service_options);
  SocketServer server(&service);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("clients=%d commands/client=%d port=%u\n\n", clients, commands,
              server.port());

  std::vector<ClientResult> results(clients);
  TimerMs wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (int i = 0; i < clients; ++i) {
      threads.emplace_back([&, i] {
        results[i] = DriveClient(server.port(), i, commands);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double wall_ms = wall.ElapsedMs();
  server.Shutdown();

  TablePrinter table({"client", "commands", "errors", "p50 rtt", "p95 rtt",
                      "p99 rtt", "max rtt"});
  uint64_t total_commands = 0;
  uint64_t total_errors = 0;
  std::vector<double> all_latency;
  for (int i = 0; i < clients; ++i) {
    const ClientResult& r = results[i];
    total_commands += r.commands;
    total_errors += r.errors;
    all_latency.insert(all_latency.end(), r.latency_ms.begin(),
                       r.latency_ms.end());
    table.AddRow({std::to_string(i), std::to_string(r.commands),
                  std::to_string(r.errors), FormatMs(Percentile(r.latency_ms, 50)),
                  FormatMs(Percentile(r.latency_ms, 95)),
                  FormatMs(Percentile(r.latency_ms, 99)),
                  FormatMs(Percentile(r.latency_ms, 100))});
  }
  table.AddRow({"all", std::to_string(total_commands),
                std::to_string(total_errors),
                FormatMs(Percentile(all_latency, 50)),
                FormatMs(Percentile(all_latency, 95)),
                FormatMs(Percentile(all_latency, 99)),
                FormatMs(Percentile(all_latency, 100))});
  table.Print();

  double seconds = wall_ms / 1000.0;
  std::printf("\ntotal: %llu commands in %s -> %.0f commands/s "
              "(%d concurrent clients, loopback TCP)\n",
              static_cast<unsigned long long>(total_commands),
              FormatMs(wall_ms).c_str(),
              seconds > 0 ? double(total_commands) / seconds : 0.0, clients);

  std::vector<std::pair<std::string, std::string>> labels = {
      {"clients", std::to_string(clients)},
      {"commands_per_client", std::to_string(commands)}};
  if (!wal_dir.empty()) {
    labels.push_back({"wal", "on"});
    labels.push_back(
        {"group_commit", service_options.group_commit ? "on" : "off"});
    const WalGroupCounters& g = service.metrics().wal_group();
    std::printf("durable: wal_dir=%s group_commit=%s group_flushes=%llu\n",
                wal_dir.c_str(),
                service_options.group_commit ? "on" : "off",
                static_cast<unsigned long long>(g.flushes.load()));
  }
  ReportJsonMetric("bench_net_throughput",
                   {"commands_per_sec",
                    seconds > 0 ? double(total_commands) / seconds : 0.0,
                    "1/s", labels});
  ReportJsonMetric("bench_net_throughput",
                   {"errors", double(total_errors), "", labels});
  for (double p : {50.0, 95.0, 99.0, 100.0}) {
    char name[32];
    std::snprintf(name, sizeof(name), "rtt_p%.0f_ms", p);
    ReportJsonMetric("bench_net_throughput",
                     {name, Percentile(all_latency, p), "ms", labels});
  }
  if (logger != nullptr) {
    logger->Flush();
    std::printf("structured log: %llu events written, %llu dropped (%s)\n",
                static_cast<unsigned long long>(logger->events_logged()),
                static_cast<unsigned long long>(logger->events_dropped()),
                logger->path().c_str());
    ReportJsonMetric("bench_net_throughput",
                     {"log_events", double(logger->events_logged()), "",
                      labels});
    ReportJsonMetric("bench_net_throughput",
                     {"log_dropped", double(logger->events_dropped()), "",
                      labels});
  }
  return total_errors == 0 ? 0 : 1;
}
