// Fig. 10: time to find dependents, TACO vs NoComp, starting from (a) the
// cell with the maximum number of dependents and (b) the head of the
// longest dependency path, per sheet, both corpora. Prints the CDF
// percentiles of the per-sheet query times plus the observed maximum
// speedup, and the Sec. IV-D edge-access statistic.

#include <cstdio>

#include "bench_util.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

struct Series {
  std::vector<double> taco_max_dep, nocomp_max_dep;
  std::vector<double> taco_path, nocomp_path;
  std::vector<double> taco_edge_accesses;
  double max_speedup = 0;
};

Series Run(const CorpusProfile& profile) {
  Series out;
  auto sheets = LoadCorpus(profile);
  for (const CorpusSheet& cs : sheets) {
    std::vector<Dependency> deps = CollectDependencies(cs.sheet);
    TacoGraph taco;
    NoCompGraph nocomp;
    for (const Dependency& d : deps) {
      (void)taco.AddDependency(d);
      (void)nocomp.AddDependency(d);
    }
    auto run_case = [&](const Cell& start, std::vector<double>* taco_ms,
                        std::vector<double>* nocomp_ms) {
      TimerMs t1;
      auto r1 = taco.FindDependents(Range(start));
      double taco_time = t1.ElapsedMs();
      taco_ms->push_back(taco_time);
      out.taco_edge_accesses.push_back(
          static_cast<double>(taco.last_query_counters().edge_accesses));

      TimerMs t2;
      auto r2 = nocomp.FindDependents(Range(start));
      double nocomp_time = t2.ElapsedMs();
      nocomp_ms->push_back(nocomp_time);
      if (taco_time > 0) {
        out.max_speedup = std::max(out.max_speedup, nocomp_time / taco_time);
      }
      (void)r1;
      (void)r2;
    };
    run_case(cs.max_dependents_cell, &out.taco_max_dep, &out.nocomp_max_dep);
    run_case(cs.longest_path_cell, &out.taco_path, &out.nocomp_path);
  }
  return out;
}

void Report(const std::string& corpus, const Series& s) {
  TablePrinter table({corpus + " find-dependents", "p50", "p75", "p90",
                      "p95", "p99", "max"});
  PrintCdfRow(&table, "TACO   (Maximum Dependents)", s.taco_max_dep);
  PrintCdfRow(&table, "NoComp (Maximum Dependents)", s.nocomp_max_dep);
  PrintCdfRow(&table, "TACO   (Longest Path)", s.taco_path);
  PrintCdfRow(&table, "NoComp (Longest Path)", s.nocomp_path);
  table.Print();
  std::printf("max speedup TACO over NoComp: %.0fx\n", s.max_speedup);
  // Sec. IV-D: the average number of edge accesses per BFS stays small.
  std::printf("mean compressed-edge accesses per query: %.1f (p98 %.1f)\n",
              Mean(s.taco_edge_accesses),
              Percentile(s.taco_edge_accesses, 98));
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Time to find dependents: TACO vs NoComp",
              "Fig. 10 (Sec. VI-C) + Sec. IV-D edge-access stats");
  Series enron = Run(BenchEnron());
  Report("Enron", enron);
  std::printf("\n");
  Series github = Run(BenchGithub());
  Report("Github", github);
  std::printf(
      "\nPaper reference: TACO max 78 ms (Enron) / 167 ms (Github);\n"
      "NoComp max 1.73 s / 48.9 s; speedup up to 34,972x.\n"
      "Shape check: TACO stays orders of magnitude below NoComp at the\n"
      "tail, and edge accesses per query remain small.\n");
  return 0;
}
