// Fig. 11: time to build the formula graph, TACO vs NoComp, per sheet.
// TACO pays a compression overhead at build time (the paper argues it is
// acceptable because loading happens once and off the critical path).

#include <cstdio>

#include "bench_util.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

void Run(const CorpusProfile& profile) {
  auto sheets = LoadCorpus(profile);
  std::vector<double> taco_ms, nocomp_ms;
  for (const CorpusSheet& cs : sheets) {
    std::vector<Dependency> deps = CollectDependencies(cs.sheet);
    {
      TacoGraph g;
      TimerMs t;
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      taco_ms.push_back(t.ElapsedMs());
    }
    {
      NoCompGraph g;
      TimerMs t;
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      nocomp_ms.push_back(t.ElapsedMs());
    }
  }
  TablePrinter table({profile.name + " build", "p50", "p75", "p90", "p95",
                      "p99", "max"});
  PrintCdfRow(&table, "TACO", taco_ms);
  PrintCdfRow(&table, "NoComp", nocomp_ms);
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Time to build formula graphs", "Fig. 11 (Sec. VI-C)");
  Run(BenchEnron());
  std::printf("\n");
  Run(BenchGithub());
  std::printf(
      "\nPaper reference: max build time TACO 16.6 s vs NoComp 7.7 s\n"
      "(Enron); 82.6 s vs 40.1 s (Github) — a ~2x compression overhead.\n"
      "Shape check: both builds are linear in sheet size and within a\n"
      "small constant factor of each other. In this implementation TACO's\n"
      "candidate search runs against a ~100x smaller vertex R-tree, which\n"
      "offsets the compression overhead; the paper's Java prototype paid\n"
      "~2x. Either way, builds are one-time and off the critical path.\n");
  return 0;
}
