// Fig. 12: time to modify the formula graph. Following the paper, the
// modification clears the contents of a column of 1K cells starting at
// the cell with the most dependents.

#include <cstdio>

#include "bench_util.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

void Run(const CorpusProfile& profile) {
  auto sheets = LoadCorpus(profile);
  std::vector<double> taco_ms, nocomp_ms;
  for (const CorpusSheet& cs : sheets) {
    std::vector<Dependency> deps = CollectDependencies(cs.sheet);
    const Cell start = cs.max_dependents_cell;
    Range cleared(start.col, start.row, start.col,
                  std::min(start.row + 999, kMaxRow));
    {
      TacoGraph g;
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      TimerMs t;
      (void)g.RemoveFormulaCells(cleared);
      taco_ms.push_back(t.ElapsedMs());
    }
    {
      NoCompGraph g;
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      TimerMs t;
      (void)g.RemoveFormulaCells(cleared);
      nocomp_ms.push_back(t.ElapsedMs());
    }
  }
  TablePrinter table({profile.name + " modify", "p50", "p75", "p90", "p95",
                      "p99", "max"});
  PrintCdfRow(&table, "TACO", taco_ms);
  PrintCdfRow(&table, "NoComp", nocomp_ms);
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Time to modify formula graphs (clear a 1K-cell column)",
              "Fig. 12 (Sec. VI-C)");
  Run(BenchEnron());
  std::printf("\n");
  Run(BenchGithub());
  std::printf(
      "\nPaper reference: easy cases (~90%%) favor NoComp slightly (<10 ms\n"
      "both); at the 99th percentile TACO wins (33 ms vs 41 ms, Github).\n"
      "Shape check: both systems stay in the millisecond range, with TACO\n"
      "no worse at the tail.\n");
  return 0;
}
