// Ablation: RR-Chain (Sec. V). On chain-heavy workloads, compressing
// chains as plain RR forces the BFS to re-access the same edge per chain
// link; RR-Chain collapses the traversal to O(1) edge accesses.

#include <cstdio>

#include "bench_util.h"
#include "graph/dependency.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

void Run(int chain_len) {
  // One long accumulator chain plus a data column, as ChainRegion builds.
  std::vector<Dependency> deps;
  for (int row = 2; row <= chain_len; ++row) {
    Dependency chain;
    chain.prec = Range(Cell{2, row - 1});
    chain.dep = Cell{2, row};
    deps.push_back(chain);
    Dependency data;
    data.prec = Range(Cell{1, row});
    data.dep = Cell{2, row};
    deps.push_back(data);
  }

  auto measure = [&](const std::vector<PatternType>& patterns,
                     const char* name, TablePrinter* table) {
    TacoOptions options;
    options.patterns = patterns;
    TacoGraph g{options};
    for (const Dependency& d : deps) (void)g.AddDependency(d);
    TimerMs t;
    auto result = g.FindDependents(Range(Cell{2, 1}));
    double ms = t.ElapsedMs();
    table->AddRow({name, std::to_string(g.NumEdges()), FormatMs(ms),
                   std::to_string(g.last_query_counters().edge_accesses)});
    (void)result;
  };

  TablePrinter table({"chain length " + std::to_string(chain_len),
                      "Edges", "Find-dependents", "Edge accesses"});
  measure(DefaultPatternSet(), "with RR-Chain", &table);
  measure({PatternType::kRR, PatternType::kRF, PatternType::kFR,
           PatternType::kFF},
          "RR only (no chain)", &table);
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Ablation: RR-Chain on chain workloads (Fig. 9 shape)",
              "Sec. V (the repeated-edge-access bottleneck)");
  Run(1000);
  Run(10000);
  Run(100000);
  std::printf(
      "Expectation: without RR-Chain, edge accesses grow linearly with the\n"
      "chain and query time follows; with RR-Chain both stay flat.\n");
  return 0;
}
