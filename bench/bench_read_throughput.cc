// Reader throughput + tail latency: locked vs MVCC read path,
// 1 writer + N readers on one session.
//
// One session holds an autofilled block (inputs + formula columns) in
// which EVERY formula references A1. A writer thread overwrites A1 as
// fast as acks come back — each write recalcs the whole block under the
// session mutex — while N reader threads spin on GET (plus a periodic
// GETRANGE row slice). The run repeats with the MVCC path disabled —
// every read then queues on the session mutex behind those recalcs —
// and with it enabled (the default), where a read is a thread-local
// version lookup that never waits.
//
// Two observables, because they expose the same mechanism differently:
//   * throughput — the aggregate GET rate. The locked path serializes
//     readers on one mutex, so it plateaus at mutex-handoff rate no
//     matter how many cores run readers; the MVCC path scales with
//     reader cores. NOTE: on a single-CPU host both paths are bounded
//     by one core's per-read cost and this ratio compresses toward 1x —
//     the >= 5x separation needs the readers actually running in
//     parallel.
//   * read tail latency (sampled) — a locked reader that arrives while
//     a recalc holds the mutex stalls for the whole pass; an MVCC
//     reader never does. This separation shows up on ANY core count.
//
// Profiles (TACO_BENCH_PROFILE): smoke = 0.2 s per run, default = 1 s,
// paper = 3 s; reader counts {1, 4, 8}.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/workbook_service.h"

namespace taco::bench {
namespace {

constexpr int32_t kRows = 256;  // Input rows in column A.
constexpr int32_t kCols = 4;    // A = inputs, B..D = formula columns.

// Every formula references A1, so each write to A1 dirties the whole
// 3*kRows formula block — the recalc runs under the session mutex, which
// is exactly the wait the MVCC path spares readers from.
void SeedBlock(WorkbookSession& session) {
  EditBatch batch;
  for (int32_t row = 1; row <= kRows; ++row) {
    std::string r = std::to_string(row);
    batch.push_back(Edit::SetNumber(Cell{1, row}, row));
    batch.push_back(Edit::SetFormula(Cell{2, row}, "A1+A" + r));
    batch.push_back(Edit::SetFormula(Cell{3, row}, "B" + r + "+A" + r));
    batch.push_back(Edit::SetFormula(Cell{4, row}, "C" + r + "-A1"));
  }
  auto applied = session.ApplyBatch(batch);
  if (!applied.ok()) {
    std::fprintf(stderr, "seed failed: %s\n",
                 applied.status().ToString().c_str());
    std::abort();
  }
}

struct RunResult {
  double reads_per_sec = 0;
  double writes_per_sec = 0;
  double read_p50_ms = 0;
  double read_max_ms = 0;
};

/// One measured run: `readers` threads doing GET/GETRANGE for
/// `duration_ms` while one writer overwrites A1 as fast as acks come
/// back. `versioned` toggles the MVCC path on the session. Every 64th
/// read is individually timed for the latency percentiles.
RunResult Run(bool versioned, int readers, double duration_ms) {
  WorkbookService service;
  auto session = *service.Open("bench");
  session->EnableVersionedReads(versioned);
  SeedBlock(*session);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> writes{0};
  std::mutex samples_mu;
  std::vector<double> samples;

  std::vector<std::thread> threads;
  threads.reserve(readers + 1);
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      uint64_t local = 0;
      std::vector<double> local_samples;
      local_samples.reserve(4096);
      // Mostly single-cell GETs across the block, with a periodic
      // GETRANGE slice (one row) mixed in — the bulk verb's share of
      // real read traffic.
      int32_t row = 1 + (r * 7) % kRows;
      while (!stop.load(std::memory_order_acquire)) {
        for (int32_t col = 1; col <= kCols; ++col) {
          if (local % 64 == 0) {
            TimerMs one;
            session->GetValue(Cell{col, row});
            local_samples.push_back(one.ElapsedMs());
          } else {
            session->GetValue(Cell{col, row});
          }
          ++local;
        }
        if (local % 256 == 0) {
          session->GetRange(Range(1, row, kCols, row));
          ++local;
        }
        row = row % kRows + 1;
      }
      reads.fetch_add(local);
      std::lock_guard<std::mutex> lock(samples_mu);
      samples.insert(samples.end(), local_samples.begin(),
                     local_samples.end());
    });
  }
  threads.emplace_back([&] {
    uint64_t local = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // A1 fans out to every formula: each ack paid a full-block recalc.
      if (session->SetNumber(Cell{1, 1}, double(local)).ok()) ++local;
    }
    writes.fetch_add(local);
  });

  TimerMs timer;
  while (timer.ElapsedMs() < duration_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  double secs = timer.ElapsedMs() / 1000.0;
  RunResult result;
  result.reads_per_sec = double(reads.load()) / secs;
  result.writes_per_sec = double(writes.load()) / secs;
  result.read_p50_ms = Percentile(samples, 50);
  result.read_max_ms = Percentile(samples, 100);
  return result;
}

std::string FormatRate(double per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f/s", per_sec);
  return buf;
}

std::string FormatUs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1fus", ms * 1000.0);
  return buf;
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;

  PrintHeader("Read throughput: locked vs MVCC versioned reads",
              "service extension; 1 writer + N readers, one session");

  double duration_ms = 1000;
  switch (ActiveBenchProfile()) {
    case BenchProfile::kSmoke: duration_ms = 200; break;
    case BenchProfile::kPaper: duration_ms = 3000; break;
    case BenchProfile::kDefault: break;
  }
  duration_ms = EnvDouble("TACO_BENCH_READ_MS", duration_ms);

  unsigned cores = std::thread::hardware_concurrency();
  std::printf("host cores: %u%s\n\n", cores,
              cores <= 1 ? "  (single CPU: reader parallelism cannot "
                           "manifest; compare the max-latency columns)"
                         : "");

  TablePrinter table({"readers", "locked reads", "mvcc reads", "speedup",
                      "locked max", "mvcc max", "locked writes",
                      "mvcc writes"});
  for (int readers : {1, 4, 8}) {
    RunResult locked = Run(/*versioned=*/false, readers, duration_ms);
    RunResult mvcc = Run(/*versioned=*/true, readers, duration_ms);
    double speedup = locked.reads_per_sec > 0
                         ? mvcc.reads_per_sec / locked.reads_per_sec
                         : 0;
    std::string r = std::to_string(readers);
    for (const auto& [path, run] : {std::pair<const char*, RunResult&>{
                                        "locked", locked},
                                    {"mvcc", mvcc}}) {
      ReportJsonMetric("bench_read_throughput",
                       {"reads_per_sec", run.reads_per_sec, "1/s",
                        {{"readers", r}, {"path", path}}});
      ReportJsonMetric("bench_read_throughput",
                       {"writes_per_sec", run.writes_per_sec, "1/s",
                        {{"readers", r}, {"path", path}}});
      ReportJsonMetric("bench_read_throughput",
                       {"read_max_ms", run.read_max_ms, "ms",
                        {{"readers", r}, {"path", path}}});
    }
    ReportJsonMetric("bench_read_throughput",
                     {"mvcc_speedup", speedup, "", {{"readers", r}}});
    char speedup_str[32];
    std::snprintf(speedup_str, sizeof(speedup_str), "%.1fx", speedup);
    table.AddRow({std::to_string(readers) + "R",
                  FormatRate(locked.reads_per_sec),
                  FormatRate(mvcc.reads_per_sec), speedup_str,
                  FormatUs(locked.read_max_ms), FormatUs(mvcc.read_max_ms),
                  FormatRate(locked.writes_per_sec),
                  FormatRate(mvcc.writes_per_sec)});
  }
  table.Print();
  std::printf(
      "\nlocked = EnableVersionedReads(false): every GET takes the session\n"
      "mutex, so readers queue behind the writer's full-block recalcs\n"
      "(the max-latency column shows the stall) and serialize with each other\n"
      "(the throughput columns separate as reader cores are added).\n"
      "mvcc = default path: GET resolves against the published version —\n"
      "no lock, no stall, scales with reader cores.\n");
  return 0;
}
