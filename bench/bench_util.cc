#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "baselines/deadline.h"
#include "common/ascii.h"

namespace taco::bench {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

uint64_t PercentileU64(std::vector<uint64_t> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  return xs[std::min(static_cast<size_t>(rank + 0.5), xs.size() - 1)];
}

std::string FormatMs(double ms, bool dnf) {
  if (dnf) return "DNF";
  char buffer[64];
  if (ms >= 1000) {
    std::snprintf(buffer, sizeof(buffer), "%.2f s", ms / 1000.0);
  } else if (ms >= 1) {
    std::snprintf(buffer, sizeof(buffer), "%.2f ms", ms);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.3f ms", ms);
  }
  return buffer;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("| ");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      std::printf("%-*s | ", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t w : widths) {
    for (size_t i = 0; i < w + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
}

void PrintCdfRow(TablePrinter* table, const std::string& name,
                 std::vector<double> ms) {
  table->AddRow({name, FormatMs(Percentile(ms, 50)),
                 FormatMs(Percentile(ms, 75)), FormatMs(Percentile(ms, 90)),
                 FormatMs(Percentile(ms, 95)), FormatMs(Percentile(ms, 99)),
                 FormatMs(Percentile(ms, 100))});
}

namespace {

/// JSON string escaping for the metric sink. Bench/metric/label names
/// are code-controlled, but a corpus name or unit could in principle
/// carry quotes; escaping is cheap insurance.
std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void ReportJsonMetric(std::string_view bench, const JsonMetric& metric) {
  const char* path = std::getenv("TACO_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  // One shared sink per process, opened once in append mode so several
  // binaries writing to the same path interleave whole lines.
  static std::FILE* sink = [&]() -> std::FILE* {
    std::FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot append TACO_BENCH_JSON '%s'\n",
                   path);
    }
    return f;
  }();
  if (sink == nullptr) return;

  std::string line = "{\"bench\":\"" + JsonEscape(bench) + "\"";
  line += ",\"profile\":\"";
  line += BenchProfileName(ActiveBenchProfile());
  line += "\",\"metric\":\"" + JsonEscape(metric.name) + "\"";
  char value[64];
  if (std::isfinite(metric.value)) {
    std::snprintf(value, sizeof(value), "%.9g", metric.value);
  } else {
    std::snprintf(value, sizeof(value), "null");
  }
  line += ",\"value\":";
  line += value;
  line += ",\"unit\":\"" + JsonEscape(metric.unit) + "\"";
  line += ",\"labels\":{";
  bool first = true;
  for (const auto& [key, val] : metric.labels) {
    if (!first) line += ",";
    first = false;
    line += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(val) + "\"";
  }
  line += "}}\n";
  std::fputs(line.c_str(), sink);
  std::fflush(sink);  // One line per flush: partial records never land.
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value ? std::atof(value) : fallback;
}

BenchProfile ActiveBenchProfile() {
  const char* value = std::getenv("TACO_BENCH_PROFILE");
  if (value == nullptr || value[0] == '\0') return BenchProfile::kDefault;
  std::string name = ToLowerAscii(value);
  if (name == "paper") return BenchProfile::kPaper;
  if (name == "smoke") return BenchProfile::kSmoke;
  if (name != "default") {
    static bool warned = [&] {
      std::fprintf(stderr,
                   "[bench] unknown TACO_BENCH_PROFILE '%s' "
                   "(paper|smoke|default); using default scale\n",
                   value);
      return true;
    }();
    (void)warned;
  }
  return BenchProfile::kDefault;
}

std::string_view BenchProfileName(BenchProfile profile) {
  switch (profile) {
    case BenchProfile::kDefault: return "default";
    case BenchProfile::kSmoke: return "smoke";
    case BenchProfile::kPaper: return "paper";
  }
  return "?";
}

namespace {

/// Applies the active profile's sheet/formula scale, then the individual
/// env overrides on top. `default_sheets` is the historical bench-scale
/// sheet count for the corpus.
CorpusProfile ApplyBenchScale(CorpusProfile p, int default_sheets) {
  switch (ActiveBenchProfile()) {
    case BenchProfile::kPaper:
      break;  // The full src/corpus profile IS paper scale.
    case BenchProfile::kSmoke:
      p.num_sheets = 2;
      p.max_formulas_per_sheet = 200;
      break;
    case BenchProfile::kDefault:
      p.num_sheets = default_sheets;
      break;
  }
  p.num_sheets = EnvInt("TACO_BENCH_SHEETS", p.num_sheets);
  p.max_formulas_per_sheet =
      EnvInt("TACO_BENCH_MAX_FORMULAS", p.max_formulas_per_sheet);
  return p;
}

}  // namespace

CorpusProfile BenchEnron() {
  // At default scale: the full Enron profile trimmed to a bench-scale
  // sheet count. Region and sheet size distributions stay at full scale
  // so the heavy tail (the sheets the paper's speedups come from) is
  // represented.
  return ApplyBenchScale(CorpusProfile::Enron(), 14);
}

CorpusProfile BenchGithub() {
  // Default 16 preserves the historical Enron+2 sheet count; an explicit
  // TACO_BENCH_SHEETS now applies exactly (the old code added 2 on top
  // of the override too, which made the knob lie).
  return ApplyBenchScale(CorpusProfile::Github(), 16);
}

double DnfBudgetMs() {
  double fallback = 10000;
  switch (ActiveBenchProfile()) {
    case BenchProfile::kPaper: fallback = 300000; break;  // Sec. VI cutoff.
    case BenchProfile::kSmoke: fallback = 2000; break;
    case BenchProfile::kDefault: break;
  }
  return EnvDouble("TACO_BENCH_BUDGET_MS", fallback);
}

std::vector<CorpusSheet> LoadCorpus(const CorpusProfile& profile) {
  TimerMs timer;
  CorpusGenerator generator(profile);
  std::vector<CorpusSheet> sheets = generator.GenerateAll();
  uint64_t deps = 0;
  for (const CorpusSheet& s : sheets) deps += s.expected_dependencies;
  std::printf("[corpus] %s (%s profile): %zu sheets, %llu dependencies "
              "(%.1f s)\n",
              profile.name.c_str(),
              std::string(BenchProfileName(ActiveBenchProfile())).c_str(),
              sheets.size(), static_cast<unsigned long long>(deps),
              timer.ElapsedMs() / 1000.0);
  return sheets;
}

double TimedBuild(DependencyGraph* graph, const std::vector<Dependency>& deps,
                  double budget_ms) {
  Deadline deadline(budget_ms);
  TimerMs timer;
  for (const Dependency& dep : deps) {
    (void)graph->AddDependency(dep);
    if (deadline.Expired()) return -1;
  }
  return timer.ElapsedMs();
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace taco::bench
