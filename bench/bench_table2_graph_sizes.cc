// Table II: total formula-graph vertices and edges after compression —
// NoComp vs TACO-InRow vs TACO-Full, both corpora.

#include <cstdio>
#include <tuple>

#include "compression_survey.h"

namespace taco::bench {
namespace {

std::string WithPercent(uint64_t value, uint64_t base) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%llu (%.1f%%)",
                static_cast<unsigned long long>(value),
                base == 0 ? 0.0 : 100.0 * static_cast<double>(value) /
                                      static_cast<double>(base));
  return buffer;
}

void Report(const CorpusSurvey& survey) {
  TablePrinter table({survey.corpus, "Vertices", "Edges"});
  uint64_t v0 = survey.TotalNoCompVertices();
  uint64_t e0 = survey.TotalNoCompEdges();
  table.AddRow({"NoComp", std::to_string(v0), std::to_string(e0)});
  table.AddRow({"TACO-InRow", WithPercent(survey.TotalInRowVertices(), v0),
                WithPercent(survey.TotalInRowEdges(), e0)});
  table.AddRow({"TACO-Full", WithPercent(survey.TotalFullVertices(), v0),
                WithPercent(survey.TotalFullEdges(), e0)});
  table.Print();
  for (const auto& [variant, vertices, edges] :
       {std::tuple<const char*, uint64_t, uint64_t>{"nocomp", v0, e0},
        {"inrow", survey.TotalInRowVertices(), survey.TotalInRowEdges()},
        {"full", survey.TotalFullVertices(), survey.TotalFullEdges()}}) {
    std::vector<std::pair<std::string, std::string>> labels = {
        {"corpus", survey.corpus}, {"variant", variant}};
    ReportJsonMetric("bench_table2_graph_sizes",
                     {"vertices", double(vertices), "", labels});
    ReportJsonMetric("bench_table2_graph_sizes",
                     {"edges", double(edges), "", labels});
  }
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Graph sizes after TACO compression (lower is better)",
              "Table II (Sec. VI-B)");
  Report(RunCompressionSurvey(BenchEnron()));
  std::printf("\n");
  Report(RunCompressionSurvey(BenchGithub()));
  std::printf(
      "\nPaper reference (full-size corpora):\n"
      "  Enron : NoComp 18.6M/23.7M; InRow 41.2%%/52.8%%; Full 6.3%%/5.0%%\n"
      "  Github: NoComp 165.8M/179.8M; InRow 33.3%%/30.7%%; Full 2.5%%/1.9%%\n"
      "Shape check: TACO-Full compresses to a few percent of NoComp and\n"
      "far below TACO-InRow on both corpora.\n");
  return 0;
}
