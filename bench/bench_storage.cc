// Storage-engine benchmark: snapshot save/load latency and size for the
// text vs binary backends over the bench corpora, plus WAL append
// throughput (with and without fsync).
//
// The headline number is cold-load speed: the binary snapshot skips the
// line/A1/number parsing entirely and loads formulas from precompiled
// ASTs, so it must load at least ~2x faster than the text format (the
// ISSUE 5 acceptance bar; docs/BENCHMARKS.md records the tables).
//
// Profile-aware: TACO_BENCH_PROFILE=smoke|paper scales the corpus like
// every other bench binary.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "eval/recalc.h"
#include "sheet/textio.h"
#include "store/storage_engine.h"
#include "store/wal.h"

namespace taco::bench {
namespace {

struct BackendNumbers {
  double save_ms = 0;
  double load_ms = 0;
  uint64_t bytes = 0;
};

std::string ScratchFile(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

/// Saves + loads every sheet of `sheets` through `engine`, accumulating
/// wall time and file size. Round-trip equality is asserted against the
/// text serialization (the differential oracle) on the first sheet.
BackendNumbers MeasureBackend(const StorageEngine& engine,
                              const std::vector<CorpusSheet>& sheets) {
  BackendNumbers numbers;
  std::string path = ScratchFile(std::string("bench_storage_") +
                                 std::string(engine.name()));
  bool checked = false;
  for (const CorpusSheet& cs : sheets) {
    TimerMs save_timer;
    if (!engine.SaveSnapshot(cs.sheet, path).ok()) {
      std::fprintf(stderr, "save failed (%s)\n",
                   std::string(engine.name()).c_str());
      continue;
    }
    numbers.save_ms += save_timer.ElapsedMs();
    numbers.bytes += std::filesystem::file_size(path);
    TimerMs load_timer;
    auto loaded = engine.LoadSnapshot(path);
    numbers.load_ms += load_timer.ElapsedMs();
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed (%s): %s\n",
                   std::string(engine.name()).c_str(),
                   loaded.status().ToString().c_str());
      continue;
    }
    if (!checked) {
      checked = true;
      Sheet reference = cs.sheet;
      loaded->set_name(reference.name());
      if (WriteSheetText(*loaded) != WriteSheetText(reference)) {
        std::fprintf(stderr, "ROUND-TRIP MISMATCH (%s)!\n",
                     std::string(engine.name()).c_str());
      }
    }
  }
  std::remove(path.c_str());
  return numbers;
}

/// Appends `records` single-edit records, returning records/second.
double MeasureWalAppends(bool sync, int records) {
  std::string path = ScratchFile(sync ? "bench_storage_sync.wal"
                                      : "bench_storage_nosync.wal");
  std::remove(path.c_str());
  WalOptions options;
  options.sync = sync;
  auto wal = WriteAheadLog::Create(path, options, {});
  if (!wal.ok()) return 0;
  TimerMs timer;
  for (int i = 0; i < records; ++i) {
    Edit edit = Edit::SetNumber(Cell{i % 50 + 1, i % 1000 + 1}, i * 0.5);
    if (!(*wal)->Append({&edit, 1}).ok()) return 0;
  }
  double elapsed = timer.ElapsedMs();
  std::remove(path.c_str());
  return elapsed > 0 ? records / (elapsed / 1000.0) : 0;
}

void RunCorpus(const CorpusProfile& profile) {
  std::vector<CorpusSheet> sheets = LoadCorpus(profile);
  auto text = MakeStorageEngine("text").value();
  auto binary = MakeStorageEngine("binary").value();
  BackendNumbers text_numbers = MeasureBackend(*text, sheets);
  BackendNumbers binary_numbers = MeasureBackend(*binary, sheets);

  TablePrinter table({profile.name, "save_ms", "load_ms", "bytes"});
  auto row = [&](const char* name, const BackendNumbers& n) {
    char save[32], load[32];
    std::snprintf(save, sizeof(save), "%.2f", n.save_ms);
    std::snprintf(load, sizeof(load), "%.2f", n.load_ms);
    table.AddRow({name, save, load, std::to_string(n.bytes)});
  };
  row("text", text_numbers);
  row("binary", binary_numbers);
  table.Print();
  for (const auto& [backend, n] :
       {std::pair<const char*, const BackendNumbers&>{"text", text_numbers},
        {"binary", binary_numbers}}) {
    std::vector<std::pair<std::string, std::string>> labels = {
        {"corpus", profile.name}, {"backend", backend}};
    ReportJsonMetric("bench_storage", {"save_ms", n.save_ms, "ms", labels});
    ReportJsonMetric("bench_storage", {"load_ms", n.load_ms, "ms", labels});
    ReportJsonMetric("bench_storage",
                     {"snapshot_bytes", double(n.bytes), "bytes", labels});
  }
  if (binary_numbers.load_ms > 0) {
    std::printf(
        "  binary load speedup: %.2fx  (size: %.2fx of text)\n",
        text_numbers.load_ms / binary_numbers.load_ms,
        text_numbers.bytes == 0
            ? 0.0
            : double(binary_numbers.bytes) / double(text_numbers.bytes));
  }
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Storage engines: snapshot save/load + WAL append",
              "ISSUE 5 (storage tentpole)");

  RunCorpus(BenchEnron());
  std::printf("\n");
  RunCorpus(BenchGithub());

  int records = ActiveBenchProfile() == BenchProfile::kSmoke ? 2000 : 20000;
  std::printf("\nWAL appends (%d single-edit records):\n", records);
  double sync_rate = MeasureWalAppends(true, records);
  double nosync_rate = MeasureWalAppends(false, records);
  std::printf("  fsync on : %10.0f records/s\n", sync_rate);
  std::printf("  fsync off: %10.0f records/s\n", nosync_rate);
  ReportJsonMetric("bench_storage", {"wal_appends_per_sec", sync_rate, "1/s",
                                     {{"fsync", "on"}}});
  ReportJsonMetric("bench_storage", {"wal_appends_per_sec", nosync_rate,
                                     "1/s", {{"fsync", "off"}}});
  std::printf(
      "\nShape check: binary loads >= 2x faster than text at every\n"
      "profile; fsync dominates WAL append cost (the durability price).\n");
  return 0;
}
