// Storage-engine benchmark: snapshot save/load latency and size for the
// text vs binary backends over the bench corpora, WAL append throughput
// (with and without fsync), and durable edit throughput through the full
// service with N concurrent mutating sessions — group commit on vs off
// (the ISSUE 9 tentpole: >=5x at the smoke profile, >10x on multicore
// with a real disk; docs/BENCHMARKS.md records the tables).
//
// Profile-aware: TACO_BENCH_PROFILE=smoke|paper scales the corpus like
// every other bench binary.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "eval/recalc.h"
#include "service/workbook_service.h"
#include "sheet/textio.h"
#include "store/storage_engine.h"
#include "store/wal.h"

namespace taco::bench {
namespace {

struct BackendNumbers {
  double save_ms = 0;
  double load_ms = 0;
  uint64_t bytes = 0;
};

std::string ScratchFile(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

/// Saves + loads every sheet of `sheets` through `engine`, accumulating
/// wall time and file size. Round-trip equality is asserted against the
/// text serialization (the differential oracle) on the first sheet.
BackendNumbers MeasureBackend(const StorageEngine& engine,
                              const std::vector<CorpusSheet>& sheets) {
  BackendNumbers numbers;
  std::string path = ScratchFile(std::string("bench_storage_") +
                                 std::string(engine.name()));
  bool checked = false;
  for (const CorpusSheet& cs : sheets) {
    TimerMs save_timer;
    if (!engine.SaveSnapshot(cs.sheet, path).ok()) {
      std::fprintf(stderr, "save failed (%s)\n",
                   std::string(engine.name()).c_str());
      continue;
    }
    numbers.save_ms += save_timer.ElapsedMs();
    numbers.bytes += std::filesystem::file_size(path);
    TimerMs load_timer;
    auto loaded = engine.LoadSnapshot(path);
    numbers.load_ms += load_timer.ElapsedMs();
    if (!loaded.ok()) {
      std::fprintf(stderr, "load failed (%s): %s\n",
                   std::string(engine.name()).c_str(),
                   loaded.status().ToString().c_str());
      continue;
    }
    if (!checked) {
      checked = true;
      Sheet reference = cs.sheet;
      loaded->set_name(reference.name());
      if (WriteSheetText(*loaded) != WriteSheetText(reference)) {
        std::fprintf(stderr, "ROUND-TRIP MISMATCH (%s)!\n",
                     std::string(engine.name()).c_str());
      }
    }
  }
  std::remove(path.c_str());
  return numbers;
}

/// Appends `records` single-edit records, returning records/second.
double MeasureWalAppends(bool sync, int records) {
  std::string path = ScratchFile(sync ? "bench_storage_sync.wal"
                                      : "bench_storage_nosync.wal");
  std::remove(path.c_str());
  WalOptions options;
  options.sync = sync;
  auto wal = WriteAheadLog::Create(path, options, {});
  if (!wal.ok()) return 0;
  TimerMs timer;
  for (int i = 0; i < records; ++i) {
    Edit edit = Edit::SetNumber(Cell{i % 50 + 1, i % 1000 + 1}, i * 0.5);
    if (!(*wal)->Append({&edit, 1}).ok()) return 0;
  }
  double elapsed = timer.ElapsedMs();
  std::remove(path.c_str());
  return elapsed > 0 ? records / (elapsed / 1000.0) : 0;
}

struct DurableNumbers {
  double edits_per_sec = 0;
  uint64_t group_flushes = 0;  ///< 0 when group commit is off.
  double mean_group_size = 0;
};

/// Durable (fsync-before-ack) edit throughput through the service:
/// `sessions` workbooks, each mutated by `threads_per_session` concurrent
/// threads, every edit WAL-logged and synced before its ack. The on/off
/// pair is the group-commit headline — same workload, same durability
/// contract, O(files) vs O(edits) fsyncs per round.
DurableNumbers MeasureDurableServiceThroughput(bool group_commit,
                                               int sessions,
                                               int threads_per_session,
                                               int edits_per_thread,
                                               bool wal = true) {
  DurableNumbers numbers;
  std::string wal_dir =
      ScratchFile(group_commit ? "bench_storage_gc_wal" : "bench_storage_wal");
  std::filesystem::remove_all(wal_dir);
  {
    WorkbookServiceOptions options;
    if (wal) options.wal_dir = wal_dir;
    options.group_commit = group_commit;
    options.group_commit_max_delay_us =
        uint32_t(EnvInt("TACO_BENCH_DURABLE_DELAY_US", 0));
    WorkbookService service(options);
    std::vector<std::shared_ptr<WorkbookSession>> handles;
    for (int s = 0; s < sessions; ++s) {
      auto session = service.Open("bench" + std::to_string(s));
      if (!session.ok()) return numbers;
      handles.push_back(*session);
    }
    TimerMs timer;
    std::vector<std::thread> threads;
    for (int s = 0; s < sessions; ++s) {
      for (int t = 0; t < threads_per_session; ++t) {
        threads.emplace_back([session = handles[s], t, edits_per_thread] {
          // Plain numbers into a per-thread column: the measured cost is
          // the durability path, not recalc.
          for (int i = 0; i < edits_per_thread; ++i) {
            if (!session->SetNumber(Cell{t + 1, i % 200 + 1}, i).ok()) {
              return;
            }
          }
        });
      }
    }
    for (auto& thread : threads) thread.join();
    double elapsed = timer.ElapsedMs();
    uint64_t edits = uint64_t(sessions) * threads_per_session *
                     uint64_t(edits_per_thread);
    numbers.edits_per_sec = elapsed > 0 ? edits / (elapsed / 1000.0) : 0;
    const WalGroupCounters& g = service.metrics().wal_group();
    numbers.group_flushes = g.flushes.load();
    numbers.mean_group_size =
        numbers.group_flushes
            ? double(g.appends.load()) / double(numbers.group_flushes)
            : 0;
  }
  std::filesystem::remove_all(wal_dir);
  return numbers;
}

void RunDurableThroughput() {
  int sessions = 8;
  int threads_per_session = 8;
  int edits_per_thread = 50;
  if (ActiveBenchProfile() == BenchProfile::kSmoke) {
    // Enough concurrent writers per workbook for rounds to coalesce
    // meaningfully, few enough edits to stay fast on CI hardware.
    threads_per_session = 16;
    edits_per_thread = 25;
  } else if (ActiveBenchProfile() == BenchProfile::kPaper) {
    sessions = 16;
    threads_per_session = 12;
    edits_per_thread = 100;
  }
  sessions = EnvInt("TACO_BENCH_DURABLE_SESSIONS", sessions);
  threads_per_session =
      EnvInt("TACO_BENCH_DURABLE_THREADS", threads_per_session);
  edits_per_thread = EnvInt("TACO_BENCH_DURABLE_EDITS", edits_per_thread);

  std::printf(
      "\nDurable edits through the service (%d sessions x %d threads x %d "
      "edits, fsync-before-ack):\n",
      sessions, threads_per_session, edits_per_thread);
  DurableNumbers off = MeasureDurableServiceThroughput(
      false, sessions, threads_per_session, edits_per_thread);
  DurableNumbers on = MeasureDurableServiceThroughput(
      true, sessions, threads_per_session, edits_per_thread);
  // The non-durable run bounds what ANY fsync scheme can reach on this
  // host: it is the same service path with the WAL disabled entirely.
  DurableNumbers ceiling = MeasureDurableServiceThroughput(
      false, sessions, threads_per_session, edits_per_thread, /*wal=*/false);
  std::printf("  no WAL (ceiling): %10.0f edits/s\n", ceiling.edits_per_sec);
  std::printf("  group commit off: %10.0f edits/s\n", off.edits_per_sec);
  std::printf(
      "  group commit on : %10.0f edits/s  (%llu group flushes, mean "
      "%.1f appends/flush)\n",
      on.edits_per_sec,
      static_cast<unsigned long long>(on.group_flushes),
      on.mean_group_size);
  double speedup =
      off.edits_per_sec > 0 ? on.edits_per_sec / off.edits_per_sec : 0;
  std::printf("  speedup: %.2fx (acceptance floor: 5x at smoke scale)\n",
              speedup);
  std::vector<std::pair<std::string, std::string>> labels = {
      {"sessions", std::to_string(sessions)},
      {"threads_per_session", std::to_string(threads_per_session)}};
  auto with_mode = [&](const char* mode) {
    auto copy = labels;
    copy.push_back({"group_commit", mode});
    return copy;
  };
  ReportJsonMetric("bench_storage",
                   {"durable_edits_per_sec", off.edits_per_sec, "1/s",
                    with_mode("off")});
  ReportJsonMetric("bench_storage",
                   {"durable_edits_per_sec", on.edits_per_sec, "1/s",
                    with_mode("on")});
  ReportJsonMetric("bench_storage",
                   {"group_commit_speedup", speedup, "x", labels});
  ReportJsonMetric("bench_storage",
                   {"group_mean_appends_per_flush", on.mean_group_size, "",
                    labels});
  ReportJsonMetric("bench_storage",
                   {"nondurable_edits_per_sec", ceiling.edits_per_sec, "1/s",
                    labels});
}

void RunCorpus(const CorpusProfile& profile) {
  std::vector<CorpusSheet> sheets = LoadCorpus(profile);
  auto text = MakeStorageEngine("text").value();
  auto binary = MakeStorageEngine("binary").value();
  BackendNumbers text_numbers = MeasureBackend(*text, sheets);
  BackendNumbers binary_numbers = MeasureBackend(*binary, sheets);

  TablePrinter table({profile.name, "save_ms", "load_ms", "bytes"});
  auto row = [&](const char* name, const BackendNumbers& n) {
    char save[32], load[32];
    std::snprintf(save, sizeof(save), "%.2f", n.save_ms);
    std::snprintf(load, sizeof(load), "%.2f", n.load_ms);
    table.AddRow({name, save, load, std::to_string(n.bytes)});
  };
  row("text", text_numbers);
  row("binary", binary_numbers);
  table.Print();
  for (const auto& [backend, n] :
       {std::pair<const char*, const BackendNumbers&>{"text", text_numbers},
        {"binary", binary_numbers}}) {
    std::vector<std::pair<std::string, std::string>> labels = {
        {"corpus", profile.name}, {"backend", backend}};
    ReportJsonMetric("bench_storage", {"save_ms", n.save_ms, "ms", labels});
    ReportJsonMetric("bench_storage", {"load_ms", n.load_ms, "ms", labels});
    ReportJsonMetric("bench_storage",
                     {"snapshot_bytes", double(n.bytes), "bytes", labels});
  }
  if (binary_numbers.load_ms > 0) {
    std::printf(
        "  binary load speedup: %.2fx  (size: %.2fx of text)\n",
        text_numbers.load_ms / binary_numbers.load_ms,
        text_numbers.bytes == 0
            ? 0.0
            : double(binary_numbers.bytes) / double(text_numbers.bytes));
  }
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Storage engines: snapshot save/load + WAL append",
              "ISSUE 5 (storage tentpole)");

  RunCorpus(BenchEnron());
  std::printf("\n");
  RunCorpus(BenchGithub());

  int records = ActiveBenchProfile() == BenchProfile::kSmoke ? 2000 : 20000;
  std::printf("\nWAL appends (%d single-edit records):\n", records);
  double sync_rate = MeasureWalAppends(true, records);
  double nosync_rate = MeasureWalAppends(false, records);
  std::printf("  fsync on : %10.0f records/s\n", sync_rate);
  std::printf("  fsync off: %10.0f records/s\n", nosync_rate);
  ReportJsonMetric("bench_storage", {"wal_appends_per_sec", sync_rate, "1/s",
                                     {{"fsync", "on"}}});
  ReportJsonMetric("bench_storage", {"wal_appends_per_sec", nosync_rate,
                                     "1/s", {{"fsync", "off"}}});

  RunDurableThroughput();

  std::printf(
      "\nShape check: binary loads >= 2x faster than text at every\n"
      "profile; fsync dominates WAL append cost (the durability price);\n"
      "group commit recovers most of it under concurrency.\n");
  return 0;
}
