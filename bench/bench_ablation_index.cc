// Ablation: the vertex overlap index — R-tree (NoComp) versus Calc-style
// containers at several container geometries, under identical uncompressed
// graphs and queries.

#include <cstdio>

#include "baselines/calcgraph.h"
#include "bench_util.h"
#include "graph/nocomp_graph.h"

namespace taco::bench {
namespace {

void Run(const CorpusProfile& profile) {
  auto sheets = LoadCorpus(profile);

  struct Config {
    std::string name;
    int cols, rows;  // container geometry; 0 = R-tree
  };
  std::vector<Config> configs = {{"R-tree (NoComp)", 0, 0},
                                 {"containers 16x1024", 16, 1024},
                                 {"containers 4x256", 4, 256},
                                 {"containers 64x8192", 64, 8192}};

  TablePrinter table({profile.name, "Build (sum)", "Find p50", "Find max"});
  for (const Config& config : configs) {
    double build_ms = 0;
    std::vector<double> find_ms;
    for (const CorpusSheet& cs : sheets) {
      std::vector<Dependency> deps = CollectDependencies(cs.sheet);
      std::unique_ptr<DependencyGraph> graph;
      if (config.cols == 0) {
        graph = std::make_unique<NoCompGraph>();
      } else {
        graph = std::make_unique<CalcGraph>(config.cols, config.rows);
      }
      TimerMs tb;
      for (const Dependency& d : deps) (void)graph->AddDependency(d);
      build_ms += tb.ElapsedMs();
      TimerMs tq;
      (void)graph->FindDependents(Range(cs.max_dependents_cell));
      find_ms.push_back(tq.ElapsedMs());
    }
    table.AddRow({config.name, FormatMs(build_ms),
                  FormatMs(Percentile(find_ms, 50)),
                  FormatMs(Percentile(find_ms, 100))});
  }
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Ablation: vertex overlap index (R-tree vs containers)",
              "Sec. VI-E NoComp vs NoComp-Calc design difference");
  Run(BenchEnron());
  std::printf(
      "\nExpectation: the R-tree dominates on sheets with large or skewed\n"
      "ranges; container performance is geometry-sensitive.\n");
  return 0;
}
