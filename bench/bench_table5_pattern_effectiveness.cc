// Table V: number of edges reduced by each pattern — corpus total and
// per-sheet maximum. Also reports the Sec. V RR-GapOne comparison
// (generated gap regions, extended pattern set).

#include <cstdio>

#include "compression_survey.h"

namespace taco::bench {
namespace {

void Report(const CorpusSurvey& enron, const CorpusSurvey& github) {
  const PatternType kOrder[] = {PatternType::kRR, PatternType::kRF,
                                PatternType::kFR, PatternType::kFF,
                                PatternType::kRRChain};
  TablePrinter table({"Pattern", "Enron Total", "Enron Max", "Github Total",
                      "Github Max"});
  auto totals = [&](const CorpusSurvey& survey, PatternType type,
                    uint64_t* total, uint64_t* max) {
    *total = 0;
    *max = 0;
    for (const SheetSurvey& s : survey.sheets) {
      auto it = s.pattern_stats.find(type);
      if (it == s.pattern_stats.end()) continue;
      *total += it->second.reduced();
      *max = std::max(*max, it->second.reduced());
    }
  };
  for (PatternType type : kOrder) {
    uint64_t et, em, gt, gm;
    totals(enron, type, &et, &em);
    totals(github, type, &gt, &gm);
    table.AddRow({std::string(PatternTypeToString(type)), std::to_string(et),
                  std::to_string(em), std::to_string(gt),
                  std::to_string(gm)});
  }
  table.Print();
}

void GapOneComparison() {
  std::printf("\nSec. V extension: RR vs RR-GapOne prevalence\n");
  CorpusProfile p = BenchEnron();
  p.name = "Enron+gaps";
  p.num_sheets = std::max(2, p.num_sheets / 2);
  p.gap_region_probability = 0.15;  // some gapped derived regions
  TacoOptions extended;
  extended.patterns = ExtendedPatternSet();
  CorpusSurvey survey = RunCompressionSurvey(p, extended);

  uint64_t rr = 0, gap = 0;
  for (const SheetSurvey& s : survey.sheets) {
    auto it = s.pattern_stats.find(PatternType::kRR);
    if (it != s.pattern_stats.end()) rr += it->second.reduced();
    it = s.pattern_stats.find(PatternType::kRRGapOne);
    if (it != s.pattern_stats.end()) gap += it->second.reduced();
  }
  std::printf("  edges reduced: RR %llu vs RR-GapOne %llu (paper: 17.4M vs\n"
              "  195K on Enron, 141.9M vs 275K on Github — GapOne marginal)\n",
              static_cast<unsigned long long>(rr),
              static_cast<unsigned long long>(gap));
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Edges reduced by each pattern (higher is better)",
              "Table V (Sec. VI-B) + Sec. V RR-GapOne stats");
  CorpusSurvey enron = RunCompressionSurvey(BenchEnron());
  CorpusSurvey github = RunCompressionSurvey(BenchGithub());
  Report(enron, github);
  std::printf(
      "\nPaper reference (full-size corpora):\n"
      "  RR 17.4M/141.9M, FF 3.84M/24.8M, RR-Chain 566K/5.87M,\n"
      "  FR 151K/179K, RF 1.9K/13.4K (Enron/Github totals)\n"
      "Shape check: RR >> FF >> RR-Chain >> FR >> RF in both corpora.\n");
  GapOneComparison();
  return 0;
}
