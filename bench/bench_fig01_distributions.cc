// Fig. 1: probability distributions of the per-sheet maximum dependent
// count and longest dependency path, for the Enron-like and Github-like
// corpora. Buckets follow the paper: (0,100], (100,1K], (1K,10K], (10K,∞).

#include <cstdio>

#include "bench_util.h"

namespace taco::bench {
namespace {

constexpr uint64_t kBucketEdges[] = {100, 1000, 10000};

int BucketOf(uint64_t v) {
  for (int i = 0; i < 3; ++i) {
    if (v <= kBucketEdges[i]) return i;
  }
  return 3;
}

void Report(const CorpusProfile& profile,
            const double paper_max_dep[4], const double paper_path[4]) {
  // Fig. 1 only needs the per-sheet statistics; the full-size profiles
  // (not the bench-scaled ones) carry the heavy tail.
  auto sheets = LoadCorpus(profile);
  double max_dep[4] = {0, 0, 0, 0};
  double path[4] = {0, 0, 0, 0};
  for (const CorpusSheet& s : sheets) {
    max_dep[BucketOf(s.expected_max_dependents)] += 1;
    path[BucketOf(s.expected_longest_path)] += 1;
  }
  double n = static_cast<double>(sheets.size());

  TablePrinter table({profile.name, "(0,100]", "(100,1K]", "(1K,10K]",
                      "(10K,inf)"});
  auto row = [&](const std::string& name, const double measured[4],
                 const double paper[4]) {
    char cells[4][48];
    for (int i = 0; i < 4; ++i) {
      std::snprintf(cells[i], sizeof(cells[i]), "%.2f (paper ~%.2f)",
                    measured[i] / n, paper[i]);
    }
    table.AddRow({name, cells[0], cells[1], cells[2], cells[3]});
  };
  row("Maximum Dependents", max_dep, paper_max_dep);
  row("Longest Path", path, paper_path);
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Per-sheet maximum dependents / longest path distributions",
              "Fig. 1 (Sec. I)");
  // Paper reference shares read off Fig. 1 (approximate).
  const double enron_dep[4] = {0.42, 0.33, 0.20, 0.05};
  const double enron_path[4] = {0.74, 0.22, 0.03, 0.01};
  const double github_dep[4] = {0.35, 0.32, 0.24, 0.09};
  const double github_path[4] = {0.63, 0.25, 0.09, 0.03};
  Report(taco::CorpusProfile::Enron(), enron_dep, enron_path);
  std::printf("\n");
  Report(taco::CorpusProfile::Github(), github_dep, github_path);
  std::printf(
      "\nShape check: most sheets sit in the small buckets while a tail\n"
      "reaches beyond 10K dependents / 10K-edge paths, motivating\n"
      "compressed traversal (the paper reports up to 300K dependents and\n"
      "200K-edge paths).\n");
  return 0;
}
