// Table IV: per-sheet fraction of edges remaining after compression
// (|E| / |E'|): min / 25th percentile / median / mean. Lower is better.

#include <cstdio>

#include "compression_survey.h"

namespace taco::bench {
namespace {

void Report(const CorpusSurvey& survey) {
  std::vector<double> inrow, full;
  for (const SheetSurvey& s : survey.sheets) {
    if (s.nocomp_edges == 0) continue;
    inrow.push_back(100.0 * static_cast<double>(s.inrow_edges) /
                    static_cast<double>(s.nocomp_edges));
    full.push_back(100.0 * static_cast<double>(s.full_edges) /
                   static_cast<double>(s.nocomp_edges));
  }
  TablePrinter table({survey.corpus, "Min", "25th per.", "Median", "Mean"});
  auto pct = [](double v) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.2f%%", v);
    return std::string(buffer);
  };
  auto row = [&](const std::string& name, const std::vector<double>& xs) {
    table.AddRow({name, pct(Percentile(xs, 0)), pct(Percentile(xs, 25)),
                  pct(Percentile(xs, 50)), pct(Mean(xs))});
  };
  row("TACO-InRow", inrow);
  row("TACO-Full", full);
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Remaining edges after compression (lower is better)",
              "Table IV (Sec. VI-B)");
  Report(RunCompressionSurvey(BenchEnron()));
  std::printf("\n");
  Report(RunCompressionSurvey(BenchGithub()));
  std::printf(
      "\nPaper reference (full-size corpora):\n"
      "  Enron : InRow median 39.8%% mean 42.3%%; Full median 1.9%% mean 7.4%%\n"
      "  Github: InRow median 17.5%% mean 36.5%%; Full median 0.2%% mean 3.4%%\n"
      "Shape check: TACO-Full keeps only a few percent of the edges;\n"
      "Github compresses further than Enron (cleaner autofill regions).\n");
  return 0;
}
