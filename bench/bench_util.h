// Shared infrastructure for the paper-reproduction bench binaries:
// timing, percentile statistics, fixed-width table / CDF printers, and
// bench-scale corpus profiles.
//
// Environment knobs (all optional):
//   TACO_BENCH_PROFILE    scale preset: "paper" (full corpus sizes and
//                         the paper's 300 s DNF budget), "smoke" (tiny
//                         CI-scale corpora, 2 s budget), or unset for
//                         the laptop-bench default scale
//   TACO_BENCH_SHEETS     override the per-corpus sheet count
//   TACO_BENCH_MAX_FORMULAS  override the per-sheet formula cap
//   TACO_BENCH_BUDGET_MS  DNF cutoff for baseline builds/queries
//                         (default 10000; the paper used 300000/60000)
//   TACO_BENCH_JSON       path of a JSON Lines sink: every
//                         ReportJsonMetric() call appends one object, so
//                         several bench binaries pointed at the same
//                         file build one machine-readable artifact
// The fine-grained knobs win over the profile, so a profile can be
// tweaked without abandoning it.

#ifndef TACO_BENCH_BENCH_UTIL_H_
#define TACO_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/generator.h"
#include "graph/dependency_graph.h"

namespace taco::bench {

/// Wall-clock stopwatch in milliseconds.
class TimerMs {
 public:
  TimerMs() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

double Mean(const std::vector<double>& xs);
/// Interpolated percentile, p in [0, 100]. Empty input returns 0.
double Percentile(std::vector<double> xs, double p);
uint64_t PercentileU64(std::vector<uint64_t> xs, double p);

/// "12.345 ms" / "1.234 s" / "DNF".
std::string FormatMs(double ms, bool dnf = false);

/// Fixed-width console table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints one named series of a CDF: p50/p75/p90/p95/p99/max over `ms`.
void PrintCdfRow(TablePrinter* table, const std::string& name,
                 std::vector<double> ms);

int EnvInt(const char* name, int fallback);
double EnvDouble(const char* name, double fallback);

/// One machine-readable datapoint for the TACO_BENCH_JSON sink.
struct JsonMetric {
  std::string name;  ///< e.g. "reads_per_sec", "build_ms".
  double value = 0;
  std::string unit;  ///< e.g. "1/s", "ms", "bytes"; "" = dimensionless.
  /// Run parameters that identify the datapoint, e.g.
  /// {{"readers", "4"}, {"path", "mvcc"}}.
  std::vector<std::pair<std::string, std::string>> labels;
};

/// Appends one JSON object (one line) to the file named by
/// TACO_BENCH_JSON:
///   {"bench":"...","profile":"smoke","metric":"...","value":...,
///    "unit":"...","labels":{...}}
/// No-op when the env var is unset, so the human-readable tables stay
/// the default. Append mode on purpose: the bench_smoke aggregate runs
/// several binaries against one artifact file. Non-finite values (a DNF
/// sentinel, say) are emitted as null.
void ReportJsonMetric(std::string_view bench, const JsonMetric& metric);

/// The TACO_BENCH_PROFILE scale presets.
enum class BenchProfile {
  kDefault,  ///< Laptop-bench scale (the historical defaults).
  kSmoke,    ///< CI scale: tiny corpora, 2 s DNF budget.
  kPaper,    ///< Full corpus sizes (Sec. VI), 300 s DNF budget.
};

/// Reads TACO_BENCH_PROFILE ("paper"/"smoke"; anything else, or unset,
/// is the default profile — unknown values warn once on stderr).
BenchProfile ActiveBenchProfile();
std::string_view BenchProfileName(BenchProfile profile);

/// Bench corpus profiles at the scale ActiveBenchProfile() selects
/// (default: smaller than the src/corpus defaults so a full bench suite
/// completes in minutes; ratios preserved). TACO_BENCH_SHEETS /
/// TACO_BENCH_MAX_FORMULAS still override individual knobs.
CorpusProfile BenchEnron();
CorpusProfile BenchGithub();

/// DNF cutoff for baseline builds/queries (TACO_BENCH_BUDGET_MS).
double DnfBudgetMs();

/// Generates the corpus, printing a one-line progress note.
std::vector<CorpusSheet> LoadCorpus(const CorpusProfile& profile);

/// Feeds `deps` into `graph`, honoring the DNF budget. Returns build time
/// in ms, or a negative value when the budget expired (DNF).
double TimedBuild(DependencyGraph* graph, const std::vector<Dependency>& deps,
                  double budget_ms);

/// Prints the standard header for a bench binary.
void PrintHeader(const std::string& title, const std::string& paper_ref);

}  // namespace taco::bench

#endif  // TACO_BENCH_BENCH_UTIL_H_
