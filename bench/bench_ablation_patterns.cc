// Ablation: leave-one-pattern-out — how much compression each pattern
// contributes on a realistic corpus — plus the extended set (RR-GapOne)
// on a gap-heavy profile.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

void Run(const CorpusProfile& profile) {
  auto sheets = LoadCorpus(profile);
  std::vector<std::vector<Dependency>> deps;
  for (const CorpusSheet& cs : sheets) {
    deps.push_back(CollectDependencies(cs.sheet));
  }

  auto edges_with = [&](const std::vector<PatternType>& patterns) {
    uint64_t edges = 0;
    for (const auto& d : deps) {
      TacoOptions options;
      options.patterns = patterns;
      TacoGraph g{options};
      for (const Dependency& dep : d) (void)g.AddDependency(dep);
      edges += g.NumEdges();
    }
    return edges;
  };

  uint64_t base = edges_with(DefaultPatternSet());
  TablePrinter table({profile.name, "Total edges", "vs default"});
  table.AddRow({"default set", std::to_string(base), "+0.00%"});
  for (PatternType drop : DefaultPatternSet()) {
    std::vector<PatternType> reduced;
    for (PatternType p : DefaultPatternSet()) {
      if (p != drop) reduced.push_back(p);
    }
    uint64_t edges = edges_with(reduced);
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2f%%",
                  100.0 * (static_cast<double>(edges) -
                           static_cast<double>(base)) /
                      static_cast<double>(base));
    table.AddRow({"without " + std::string(PatternTypeToString(drop)),
                  std::to_string(edges), delta});
  }
  uint64_t extended = edges_with(ExtendedPatternSet());
  char delta[32];
  std::snprintf(delta, sizeof(delta), "%+.2f%%",
                100.0 * (static_cast<double>(extended) -
                         static_cast<double>(base)) /
                    static_cast<double>(base));
  table.AddRow({"+ RR-GapOne", std::to_string(extended), delta});
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Ablation: pattern set (leave-one-out)",
              "Sec. III patterns + Sec. V extension");
  Run(BenchEnron());
  std::printf("\n");
  taco::CorpusProfile gap_heavy = BenchEnron();
  gap_heavy.name = "Enron+gaps";
  gap_heavy.num_sheets = std::max(2, gap_heavy.num_sheets / 2);
  gap_heavy.gap_region_probability = 0.3;
  Run(gap_heavy);
  std::printf(
      "\nExpectation: dropping RR hurts most (Table V ordering); RR-GapOne\n"
      "helps only when stride-2 regions exist.\n");
  return 0;
}
