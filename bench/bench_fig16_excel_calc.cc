// Fig. 16: finding dependents — TACO vs NoComp vs NoComp-Calc (container
// index) vs the Excel-like shared-formula store — on the top sheets by
// TACO find-dependents time, renamed max1..maxN like the paper.

#include <algorithm>
#include <cstdio>

#include "baselines/calcgraph.h"
#include "baselines/excellike.h"
#include "bench_util.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

void Run(const CorpusProfile& profile, int top_n) {
  auto sheets = LoadCorpus(profile);

  struct Case {
    std::string name;
    std::vector<Dependency> deps;
    Cell query;
    double taco_find_ms = 0;
  };
  std::vector<Case> cases;
  for (const CorpusSheet& cs : sheets) {
    Case c;
    c.deps = CollectDependencies(cs.sheet);
    c.query = cs.max_dependents_cell;
    TacoGraph probe;
    for (const Dependency& d : c.deps) (void)probe.AddDependency(d);
    TimerMs t;
    (void)probe.FindDependents(Range(c.query));
    c.taco_find_ms = t.ElapsedMs();
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(), [](const Case& a, const Case& b) {
    return a.taco_find_ms > b.taco_find_ms;
  });
  cases.resize(std::min<size_t>(cases.size(), top_n));

  const double budget = DnfBudgetMs();
  TablePrinter table({profile.name + " find-dependents", "TACO", "NoComp",
                      "NoComp-Calc", "Excel-like"});
  int index = 1;
  for (const Case& c : cases) {
    std::vector<std::string> row{"max" + std::to_string(index++)};
    {
      TacoGraph g;
      for (const Dependency& d : c.deps) (void)g.AddDependency(d);
      TimerMs t;
      (void)g.FindDependents(Range(c.query));
      row.push_back(FormatMs(t.ElapsedMs()));
    }
    {
      NoCompGraph g;
      for (const Dependency& d : c.deps) (void)g.AddDependency(d);
      TimerMs t;
      (void)g.FindDependents(Range(c.query));
      row.push_back(FormatMs(t.ElapsedMs()));
    }
    {
      CalcGraph g;
      for (const Dependency& d : c.deps) (void)g.AddDependency(d);
      g.set_query_budget_ms(budget);
      TimerMs t;
      (void)g.FindDependents(Range(c.query));
      row.push_back(FormatMs(t.ElapsedMs(), g.query_timed_out()));
    }
    {
      ExcelLikeGraph g;
      for (const Dependency& d : c.deps) (void)g.AddDependency(d);
      g.set_query_budget_ms(budget);
      TimerMs t;
      (void)g.FindDependents(Range(c.query));
      row.push_back(FormatMs(t.ElapsedMs(), g.query_timed_out()));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader(
      "Finding dependents vs Excel-style storage and Calc-style containers",
      "Fig. 16 (Sec. VI-E)");
  int top_n = EnvInt("TACO_BENCH_TOPN", 5);
  Run(BenchEnron(), top_n);
  std::printf("\n");
  Run(BenchGithub(), top_n);
  std::printf(
      "\nPaper reference: TACO max 442 ms vs Excel max 79.8 s (up to 632x);\n"
      "NoComp-Calc DNF'd 2 cases, TACO up to 1,682x faster than it; Excel\n"
      "was slower than NoComp in all cases (storage-level compression that\n"
      "decompresses on traversal).\n"
      "Shape check: TACO << NoComp < NoComp-Calc / Excel-like.\n");
  return 0;
}
