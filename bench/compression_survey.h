// Shared computation for Tables II-V: per-sheet graph sizes under NoComp,
// TACO-InRow, and TACO-Full, plus per-pattern reduction stats.

#ifndef TACO_BENCH_COMPRESSION_SURVEY_H_
#define TACO_BENCH_COMPRESSION_SURVEY_H_

#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco::bench {

struct SheetSurvey {
  uint64_t nocomp_vertices = 0;
  uint64_t nocomp_edges = 0;
  uint64_t inrow_vertices = 0;
  uint64_t inrow_edges = 0;
  uint64_t full_vertices = 0;
  uint64_t full_edges = 0;
  std::unordered_map<PatternType, PatternStat> pattern_stats;
};

struct CorpusSurvey {
  std::string corpus;
  std::vector<SheetSurvey> sheets;

  uint64_t TotalNoCompVertices() const;
  uint64_t TotalNoCompEdges() const;
  uint64_t TotalInRowVertices() const;
  uint64_t TotalInRowEdges() const;
  uint64_t TotalFullVertices() const;
  uint64_t TotalFullEdges() const;
};

/// Builds all three graphs for every sheet of `profile` and collects the
/// size statistics (used by the Table II/III/IV/V benches).
inline CorpusSurvey RunCompressionSurvey(const CorpusProfile& profile,
                                         const TacoOptions& full_options =
                                             TacoOptions::Full()) {
  CorpusSurvey survey;
  survey.corpus = profile.name;
  auto sheets = LoadCorpus(profile);
  for (const CorpusSheet& cs : sheets) {
    std::vector<Dependency> deps = CollectDependencies(cs.sheet);
    SheetSurvey s;
    {
      NoCompGraph g;
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      s.nocomp_vertices = g.NumVertices();
      s.nocomp_edges = g.NumEdges();
    }
    {
      TacoGraph g{TacoOptions::InRow()};
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      s.inrow_vertices = g.NumVertices();
      s.inrow_edges = g.NumEdges();
    }
    {
      TacoGraph g{full_options};
      for (const Dependency& d : deps) (void)g.AddDependency(d);
      s.full_vertices = g.NumVertices();
      s.full_edges = g.NumEdges();
      s.pattern_stats = g.PatternStats();
    }
    survey.sheets.push_back(std::move(s));
  }
  return survey;
}

inline uint64_t CorpusSurvey::TotalNoCompVertices() const {
  uint64_t t = 0;
  for (const auto& s : sheets) t += s.nocomp_vertices;
  return t;
}
inline uint64_t CorpusSurvey::TotalNoCompEdges() const {
  uint64_t t = 0;
  for (const auto& s : sheets) t += s.nocomp_edges;
  return t;
}
inline uint64_t CorpusSurvey::TotalInRowVertices() const {
  uint64_t t = 0;
  for (const auto& s : sheets) t += s.inrow_vertices;
  return t;
}
inline uint64_t CorpusSurvey::TotalInRowEdges() const {
  uint64_t t = 0;
  for (const auto& s : sheets) t += s.inrow_edges;
  return t;
}
inline uint64_t CorpusSurvey::TotalFullVertices() const {
  uint64_t t = 0;
  for (const auto& s : sheets) t += s.full_vertices;
  return t;
}
inline uint64_t CorpusSurvey::TotalFullEdges() const {
  uint64_t t = 0;
  for (const auto& s : sheets) t += s.full_edges;
  return t;
}

}  // namespace taco::bench

#endif  // TACO_BENCH_COMPRESSION_SURVEY_H_
