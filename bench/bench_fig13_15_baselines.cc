// Figs. 13-15: per-sheet latency for building, finding dependents, and
// modifying the graph — TACO vs NoComp vs CellGraph (the RedisGraph
// stand-in) vs Antifreeze — on the top sheets by TACO build time, renamed
// max1..maxN like the paper. Budget-exceeded runs print as DNF.

#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/antifreeze.h"
#include "baselines/cellgraph.h"
#include "bench_util.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

namespace taco::bench {
namespace {

struct SheetCase {
  std::string name;
  std::vector<Dependency> deps;
  Cell query_cell;
  Range modify_range;
};

struct SystemResult {
  double build_ms = -1;   // negative = DNF
  double find_ms = -1;
  double modify_ms = -1;
};

// Runs one system over one sheet: timed build (DNF budget), timed query,
// timed 1K-column clear.
SystemResult RunSystem(DependencyGraph* graph, const SheetCase& sheet,
                       double budget_ms) {
  SystemResult r;
  r.build_ms = TimedBuild(graph, sheet.deps, budget_ms);
  if (r.build_ms < 0) return r;

  // Antifreeze defers table building to the first query; budget it too.
  if (auto* anti = dynamic_cast<AntifreezeGraph*>(graph)) {
    anti->set_build_budget_ms(budget_ms);
    TimerMs t;
    bool ok = anti->BuildLookupTable();
    r.build_ms += t.ElapsedMs();
    if (!ok) {
      r.build_ms = -1;
      return r;
    }
  }
  if (auto* cg = dynamic_cast<CellGraph*>(graph)) {
    cg->set_query_budget_ms(budget_ms);
  }

  TimerMs tq;
  (void)graph->FindDependents(Range(sheet.query_cell));
  r.find_ms = tq.ElapsedMs();
  if (auto* cg = dynamic_cast<CellGraph*>(graph)) {
    if (cg->query_timed_out()) r.find_ms = -1;
  }

  TimerMs tm;
  (void)graph->RemoveFormulaCells(sheet.modify_range);
  r.modify_ms = tm.ElapsedMs();
  if (auto* anti = dynamic_cast<AntifreezeGraph*>(graph)) {
    // Antifreeze rebuilds its table after a modification; that rebuild is
    // the maintenance cost the paper charges it.
    TimerMs tr;
    bool ok = anti->BuildLookupTable();
    r.modify_ms += tr.ElapsedMs();
    if (!ok) r.modify_ms = -1;
  }
  return r;
}

void Run(const CorpusProfile& profile, int top_n) {
  auto sheets = LoadCorpus(profile);

  // Rank sheets by TACO build time, as in the paper.
  std::vector<std::pair<double, SheetCase>> ranked;
  for (const CorpusSheet& cs : sheets) {
    SheetCase sc;
    sc.deps = CollectDependencies(cs.sheet);
    sc.query_cell = cs.max_dependents_cell;
    sc.modify_range =
        Range(cs.max_dependents_cell.col, cs.max_dependents_cell.row,
              cs.max_dependents_cell.col,
              std::min(cs.max_dependents_cell.row + 999, kMaxRow));
    TacoGraph probe;
    TimerMs t;
    for (const Dependency& d : sc.deps) (void)probe.AddDependency(d);
    ranked.push_back({t.ElapsedMs(), std::move(sc)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  ranked.resize(std::min<size_t>(ranked.size(), top_n));
  for (size_t i = 0; i < ranked.size(); ++i) {
    ranked[i].second.name = "max" + std::to_string(i + 1);
  }

  const double budget = DnfBudgetMs();
  TablePrinter build({profile.name + " build", "TACO", "NoComp",
                      "CellGraph(Redis)", "Antifreeze"});
  TablePrinter find({profile.name + " find-dependents", "TACO", "NoComp",
                     "CellGraph(Redis)", "Antifreeze"});
  TablePrinter modify({profile.name + " modify", "TACO", "NoComp",
                       "CellGraph(Redis)", "Antifreeze"});

  for (auto& [build_time, sheet] : ranked) {
    SystemResult rs[4];
    {
      TacoGraph g;
      rs[0] = RunSystem(&g, sheet, budget);
    }
    {
      NoCompGraph g;
      rs[1] = RunSystem(&g, sheet, budget);
    }
    {
      CellGraph g;
      rs[2] = RunSystem(&g, sheet, budget);
    }
    {
      AntifreezeGraph g;
      rs[3] = RunSystem(&g, sheet, budget);
    }
    auto row = [&](auto member) {
      std::vector<std::string> cells{sheet.name};
      for (int i = 0; i < 4; ++i) {
        double v = rs[i].*member;
        cells.push_back(FormatMs(v, v < 0));
      }
      return cells;
    };
    build.AddRow(row(&SystemResult::build_ms));
    find.AddRow(row(&SystemResult::find_ms));
    modify.AddRow(row(&SystemResult::modify_ms));
  }
  build.Print();
  std::printf("\n");
  find.Print();
  std::printf("\n");
  modify.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader(
      "Latency vs Antifreeze and a cell-granularity graph store",
      "Figs. 13-15 (Sec. VI-D); DNF budget per op: TACO_BENCH_BUDGET_MS");
  int top_n = EnvInt("TACO_BENCH_TOPN", 5);
  Run(BenchEnron(), top_n);
  std::printf("\n");
  Run(BenchGithub(), top_n);
  std::printf(
      "\nPaper reference: Antifreeze finished building for only 4 of 20\n"
      "sheets; RedisGraph DNF'd many builds/queries; TACO's speedup over\n"
      "RedisGraph on finding dependents reached 19,555x. Where Antifreeze\n"
      "finishes, its query time matches TACO but build/modify are far\n"
      "slower.\n");
  return 0;
}
