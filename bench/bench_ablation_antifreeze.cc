// Ablation: Antifreeze's bounding-range budget K — false-positive rate of
// the compressed dependents table versus build time, K in {1, 5, 20, 100}
// (the paper fixes K=20 per the original system).
//
// The workload stresses the weakness of bounding-range compression:
// popular cells whose dependents are scattered across the sheet (report
// cells referenced from many places), so no small set of rectangles
// covers them exactly.

#include <cstdio>
#include <random>

#include "baselines/antifreeze.h"
#include "bench_util.h"
#include "common/range_set.h"
#include "graph/nocomp_graph.h"

namespace taco::bench {
namespace {

struct Workload {
  std::vector<Dependency> deps;
  std::vector<Cell> queries;
};

Workload ScatteredWorkload(uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int32_t> col(1, 120);
  std::uniform_int_distribution<int32_t> row(1, 4000);
  Workload w;
  // 20 popular input cells, each referenced by 60 formulas scattered over
  // the sheet; plus background formulas referencing random cells.
  for (int i = 0; i < 20; ++i) {
    Cell popular{150 + i, 1};
    w.queries.push_back(popular);
    for (int k = 0; k < 60; ++k) {
      Dependency d;
      d.prec = Range(popular);
      d.dep = Cell{col(rng), row(rng)};
      w.deps.push_back(d);
    }
  }
  for (int i = 0; i < 2000; ++i) {
    Dependency d;
    d.prec = Range(Cell{col(rng), row(rng)});
    d.dep = Cell{col(rng), row(rng)};
    if (d.prec.head == d.dep) continue;  // no self-loops
    w.deps.push_back(d);
  }
  return w;
}

void Run() {
  Workload w = ScatteredWorkload(2023);

  NoCompGraph exact;
  for (const Dependency& d : w.deps) (void)exact.AddDependency(d);

  TablePrinter table({"K", "Build", "Table entries", "False-positive rate",
                      "Exact queries"});
  for (int k : {1, 5, 20, 100}) {
    AntifreezeGraph anti(k);
    for (const Dependency& d : w.deps) (void)anti.AddDependency(d);
    TimerMs t;
    (void)anti.BuildLookupTable();
    double build_ms = t.ElapsedMs();

    double fp_cells = 0, exact_cells = 0;
    int exact_queries = 0;
    for (const Cell& query : w.queries) {
      auto approx = anti.FindDependents(Range(query));
      auto truth = exact.FindDependents(Range(query));
      uint64_t approx_count = CoveredCellCount(approx);
      uint64_t truth_count = CoveredCellCount(truth);
      fp_cells += static_cast<double>(approx_count - truth_count);
      exact_cells += static_cast<double>(truth_count);
      if (approx_count == truth_count) ++exact_queries;
    }
    char fp[32], eq[32];
    std::snprintf(fp, sizeof(fp), "%.0f%%",
                  exact_cells == 0 ? 0.0 : 100.0 * fp_cells / exact_cells);
    std::snprintf(eq, sizeof(eq), "%d/%zu", exact_queries,
                  w.queries.size());
    table.AddRow({std::to_string(k), FormatMs(build_ms),
                  std::to_string(anti.lookup_table_size()), fp, eq});
  }
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Ablation: Antifreeze bounding-range budget K",
              "Sec. VI-D (K=20 in the paper; false positives are inherent)");
  Run();
  std::printf(
      "\nExpectation: small K inflates false positives on scattered\n"
      "dependent sets; large K approaches exactness at higher table cost.\n"
      "TACO needs no such trade-off (it is lossless at every size).\n");
  return 0;
}
