// Google-benchmark microbenchmarks for the core operations: dependency
// insertion (compression on/off), dependent/precedent queries, graph
// maintenance, R-tree primitives, and formula parsing.

#include <benchmark/benchmark.h>

#include "corpus/generator.h"
#include "formula/parser.h"
#include "graph/nocomp_graph.h"
#include "rtree/rtree.h"
#include "taco/taco_graph.h"

namespace taco {
namespace {

// A mid-size corpus sheet shared across benchmarks (generated once).
const CorpusSheet& SharedSheet() {
  static const CorpusSheet* sheet = [] {
    CorpusProfile p = CorpusProfile::Enron();
    p.num_sheets = 1;
    p.min_formulas_per_sheet = 8000;
    p.max_formulas_per_sheet = 8000;
    p.max_region_len = 2000;
    auto* out = new CorpusSheet(CorpusGenerator(p).GenerateSheet(0));
    return out;
  }();
  return *sheet;
}

const std::vector<Dependency>& SharedDeps() {
  static const std::vector<Dependency>* deps =
      new std::vector<Dependency>(CollectDependencies(SharedSheet().sheet));
  return *deps;
}

void BM_TacoBuild(benchmark::State& state) {
  const auto& deps = SharedDeps();
  for (auto _ : state) {
    TacoGraph graph;
    for (const Dependency& d : deps) (void)graph.AddDependency(d);
    benchmark::DoNotOptimize(graph.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(deps.size()));
}
BENCHMARK(BM_TacoBuild)->Unit(benchmark::kMillisecond);

void BM_NoCompBuild(benchmark::State& state) {
  const auto& deps = SharedDeps();
  for (auto _ : state) {
    NoCompGraph graph;
    for (const Dependency& d : deps) (void)graph.AddDependency(d);
    benchmark::DoNotOptimize(graph.NumEdges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(deps.size()));
}
BENCHMARK(BM_NoCompBuild)->Unit(benchmark::kMillisecond);

void BM_TacoFindDependents(benchmark::State& state) {
  static TacoGraph* graph = [] {
    auto* g = new TacoGraph();
    for (const Dependency& d : SharedDeps()) (void)g->AddDependency(d);
    return g;
  }();
  const Cell query = SharedSheet().max_dependents_cell;
  for (auto _ : state) {
    auto result = graph->FindDependents(Range(query));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TacoFindDependents)->Unit(benchmark::kMicrosecond);

void BM_NoCompFindDependents(benchmark::State& state) {
  static NoCompGraph* graph = [] {
    auto* g = new NoCompGraph();
    for (const Dependency& d : SharedDeps()) (void)g->AddDependency(d);
    return g;
  }();
  const Cell query = SharedSheet().max_dependents_cell;
  for (auto _ : state) {
    auto result = graph->FindDependents(Range(query));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NoCompFindDependents)->Unit(benchmark::kMicrosecond);

void BM_TacoFindPrecedents(benchmark::State& state) {
  static TacoGraph* graph = [] {
    auto* g = new TacoGraph();
    for (const Dependency& d : SharedDeps()) (void)g->AddDependency(d);
    return g;
  }();
  const Cell query = SharedSheet().max_dependents_cell;
  for (auto _ : state) {
    auto result = graph->FindPrecedents(Range(query));
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_TacoFindPrecedents)->Unit(benchmark::kMicrosecond);

void BM_TacoModify(benchmark::State& state) {
  const auto& deps = SharedDeps();
  const Cell anchor = SharedSheet().max_dependents_cell;
  Range cleared(anchor.col, anchor.row, anchor.col, anchor.row + 200);
  for (auto _ : state) {
    state.PauseTiming();
    TacoGraph graph;
    for (const Dependency& d : deps) (void)graph.AddDependency(d);
    state.ResumeTiming();
    (void)graph.RemoveFormulaCells(cleared);
  }
}
BENCHMARK(BM_TacoModify)->Unit(benchmark::kMillisecond);

void BM_RTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    RTree tree;
    for (int i = 0; i < 1000; ++i) {
      tree.Insert(Range(i % 50 + 1, i + 1, i % 50 + 2, i + 3),
                  static_cast<uint64_t>(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_RTreeInsert)->Unit(benchmark::kMicrosecond);

void BM_RTreeSearch(benchmark::State& state) {
  static RTree* tree = [] {
    auto* t = new RTree();
    for (int i = 0; i < 10000; ++i) {
      t->Insert(Range(i % 100 + 1, i / 10 + 1, i % 100 + 2, i / 10 + 4),
                static_cast<uint64_t>(i));
    }
    return t;
  }();
  std::vector<RTree::EntryId> out;
  int i = 0;
  for (auto _ : state) {
    out.clear();
    tree->SearchOverlap(Range(i % 100 + 1, i % 900 + 1, i % 100 + 3,
                              i % 900 + 10),
                        &out);
    benchmark::DoNotOptimize(out);
    ++i;
  }
}
BENCHMARK(BM_RTreeSearch)->Unit(benchmark::kMicrosecond);

void BM_ParseFormula(benchmark::State& state) {
  for (auto _ : state) {
    auto ast = ParseFormula("IF(A3=A2,SUM($B$1:B4)+M3*2,VLOOKUP(A3,D1:E9,2))");
    benchmark::DoNotOptimize(ast);
  }
}
BENCHMARK(BM_ParseFormula)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace taco

BENCHMARK_MAIN();
