// Table III: per-sheet number of edges reduced by compression
// (|E'| - |E|): max / 75th percentile / median / mean, both variants and
// corpora. Higher is better.

#include <cstdio>

#include "compression_survey.h"

namespace taco::bench {
namespace {

void Report(const CorpusSurvey& survey) {
  std::vector<uint64_t> inrow, full;
  for (const SheetSurvey& s : survey.sheets) {
    inrow.push_back(s.nocomp_edges - s.inrow_edges);
    full.push_back(s.nocomp_edges - s.full_edges);
  }
  TablePrinter table(
      {survey.corpus, "Max", "75th per.", "Median", "Mean"});
  auto row = [&](const std::string& name, std::vector<uint64_t> xs) {
    std::vector<double> d(xs.begin(), xs.end());
    table.AddRow({name, std::to_string(PercentileU64(xs, 100)),
                  std::to_string(PercentileU64(xs, 75)),
                  std::to_string(PercentileU64(xs, 50)),
                  std::to_string(static_cast<uint64_t>(Mean(d)))});
  };
  row("TACO-InRow", inrow);
  row("TACO-Full", full);
  table.Print();
}

}  // namespace
}  // namespace taco::bench

int main() {
  using namespace taco::bench;
  PrintHeader("Number of edges reduced by TACO (higher is better)",
              "Table III (Sec. VI-B)");
  Report(RunCompressionSurvey(BenchEnron()));
  std::printf("\n");
  Report(RunCompressionSurvey(BenchGithub()));
  std::printf(
      "\nPaper reference (full-size corpora):\n"
      "  Enron : InRow max 142K mean 19K; Full max 700K mean 38K\n"
      "  Github: InRow max 1.69M mean 45K; Full max 3.14M mean 79K\n"
      "Shape check: TACO-Full reduces more edges than TACO-InRow at every\n"
      "statistic, and Github reductions exceed Enron's.\n");
  return 0;
}
