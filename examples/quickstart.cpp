// Quickstart: build a sheet, compress its formula graph with TACO, and
// query dependents/precedents directly on the compressed graph.
//
//   $ ./quickstart

#include <cstdio>

#include "graph/nocomp_graph.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

using namespace taco;

int main() {
  // 1. A sheet in the shape of the paper's Fig. 2: a data column A, a
  //    value column M, and a column N of IF-ladder formulas created by
  //    autofill — the tabular locality TACO compresses.
  Sheet sheet;
  for (int row = 1; row <= 5000; ++row) {
    (void)sheet.SetNumber(Cell{1, row}, row / 7);       // A: group ids
    (void)sheet.SetNumber(Cell{13, row}, row % 13 + 1); // M: amounts
  }
  (void)sheet.SetFormula(Cell{14, 1}, "M1");
  (void)sheet.SetFormula(Cell{14, 2}, "IF(A2=A1,N1+M2,M2)");
  if (Status s = Autofill(&sheet, Cell{14, 2}, Range(14, 2, 14, 5000));
      !s.ok()) {
    std::printf("autofill failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("sheet: %zu cells, %zu formulas\n", sheet.cell_count(),
              sheet.formula_cell_count());

  // 2. Build the compressed formula graph (and the uncompressed baseline
  //    for comparison).
  TacoGraph taco;
  NoCompGraph nocomp;
  (void)BuildGraphFromSheet(sheet, &taco);
  (void)BuildGraphFromSheet(sheet, &nocomp);
  std::printf("graph edges: TACO %zu vs NoComp %zu (%.1f%% remaining)\n",
              taco.NumEdges(), nocomp.NumEdges(),
              100.0 * static_cast<double>(taco.NumEdges()) /
                  static_cast<double>(nocomp.NumEdges()));

  // 3. Which cells must recalculate when A100 changes? (the query that
  //    gates interactivity in a spreadsheet engine)
  std::vector<Range> dirty = taco.FindDependents(Range(Cell{1, 100}));
  uint64_t count = 0;
  for (const Range& r : dirty) count += r.Area();
  std::printf("dependents of A100: %llu cells in %zu ranges:",
              static_cast<unsigned long long>(count), dirty.size());
  for (const Range& r : dirty) std::printf(" %s", r.ToString().c_str());
  std::printf("\n");

  // 4. What does N2500 read from, transitively?
  std::vector<Range> sources = taco.FindPrecedents(Range(Cell{14, 2500}));
  count = 0;
  for (const Range& r : sources) count += r.Area();
  std::printf("precedents of N2500: %llu cells in %zu ranges\n",
              static_cast<unsigned long long>(count), sources.size());

  // 5. Maintenance is incremental: clear a band of formulas and query
  //    again — no decompression or rebuild happens.
  (void)taco.RemoveFormulaCells(Range(14, 1000, 14, 1999));
  dirty = taco.FindDependents(Range(Cell{1, 100}));
  count = 0;
  for (const Range& r : dirty) count += r.Area();
  std::printf("after clearing N1000:N1999, dependents of A100: %llu cells\n",
              static_cast<unsigned long long>(count));
  return 0;
}
