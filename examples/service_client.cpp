// service_client: a scripted driver for the workbook service and its
// text protocol — the client half of taco_serve, linked in-process so it
// runs without pipes or sockets. It walks through a realistic session:
// open several workbooks, mix single edits with an EditBatch (one merged
// recalc for N edits), read values back, save/reload through .tsheet,
// and finish with the service STATS report.
//
// With a script file argument it instead replays protocol commands from
// the file, printing each request/response pair (same framing rules as
// taco_serve).

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/workbook_service.h"

using namespace taco;

namespace {

void Run(CommandProcessor* processor, const std::string& command) {
  std::printf("> %s\n%s\n", command.c_str(),
              processor->Execute(command).c_str());
}

int ReplayScript(CommandProcessor* processor, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open script '%s'\n", path);
    return 1;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::string command = line;
    int extra = CommandProcessor::ExtraBodyLines(line);
    if (extra < 0) {  // Unframeable BATCH header: same rule as taco_serve.
      Run(processor, command);
      return 1;
    }
    for (; extra > 0; --extra) {
      std::string body;
      if (!std::getline(in, body)) break;
      command += "\n" + body;
    }
    Run(processor, command);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  WorkbookServiceOptions options;
  options.worker_threads = 2;
  WorkbookService service(options);
  CommandProcessor processor(&service);

  if (argc > 1) return ReplayScript(&processor, argv[1]);

  std::printf("== open two workbooks ==\n");
  Run(&processor, "OPEN sales");
  Run(&processor, "OPEN forecast nocomp");
  Run(&processor, "LIST");

  std::printf("\n== single edits (one recalc each) ==\n");
  Run(&processor, "SET sales A1 100");
  Run(&processor, "SET sales A2 250");
  Run(&processor, "SET sales A3 75");
  Run(&processor, "FORMULA sales B1 SUM(A1:A3)");
  Run(&processor, "GET sales B1");

  std::printf("\n== a batch: 6 edits, ONE merged dirty-set + recalc ==\n");
  Run(&processor,
      "BATCH sales 6\n"
      "SET A1 110\n"
      "SET A2 260\n"
      "SET A3 85\n"
      "FORMULA B2 B1*2\n"
      "FORMULA B3 SUM(B1:B2)\n"
      "SET C1 \"quarterly total\"");
  Run(&processor, "GET sales B1");
  Run(&processor, "GET sales B2");
  Run(&processor, "GET sales B3");
  Run(&processor, "GET sales C1");

  std::printf("\n== independent sessions don't interfere ==\n");
  Run(&processor, "FORMULA forecast A1 1+1");
  Run(&processor, "GET forecast A1");
  Run(&processor, "GET sales A1");

  std::printf("\n== persistence round trip ==\n");
  // Unique per process: the example doubles as a ctest smoke test and
  // concurrent runs (build/ and build-tsan/) must not race on one file.
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("taco_service_client_demo." + std::to_string(::getpid()) +
        ".tsheet"))
          .string();
  Run(&processor, "SAVE sales " + path);
  Run(&processor, "CLOSE sales");
  Run(&processor, "LOAD sales2 " + path);
  Run(&processor, "GET sales2 B3");
  std::remove(path.c_str());

  std::printf("\n== per-session and service stats ==\n");
  Run(&processor, "STATS sales2");
  Run(&processor, "STATS");
  return 0;
}
