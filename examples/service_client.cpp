// service_client: a scripted driver for the workbook service and its
// text protocol — the client half of taco_serve. By default it links the
// service in-process (no pipes or sockets) and walks through a realistic
// session: open several workbooks, mix single edits with an EditBatch
// (one merged recalc for N edits), read values back, save/reload through
// .tsheet, and finish with the service STATS report.
//
// With `--connect host:port` the same driver speaks to a running
// `taco_serve --listen <port>` daemon over TCP instead (SocketClient),
// demonstrating that the wire responses match the in-process ones.
//
// With a script file argument it replays protocol commands from the
// file, printing each request/response pair (same framing rules as
// taco_serve), over whichever transport was selected.

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "net/socket_client.h"
#include "service/protocol.h"
#include "service/workbook_service.h"

using namespace taco;

namespace {

/// One complete command in, one complete response out — either
/// CommandProcessor::Execute or SocketClient::Call behind the same shape.
using Transport = std::function<std::string(const std::string&)>;

void Run(const Transport& call, const std::string& command) {
  std::printf("> %s\n%s\n", command.c_str(), call(command).c_str());
}

int ReplayScript(const Transport& call, const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open script '%s'\n", path);
    return 1;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::string command = line;
    int extra = CommandProcessor::ExtraBodyLines(line);
    if (extra < 0) {  // Unframeable BATCH header: same rule as taco_serve.
      Run(call, command);
      return 1;
    }
    for (; extra > 0; --extra) {
      std::string body;
      if (!std::getline(in, body)) break;
      command += "\n" + body;
    }
    Run(call, command);
  }
  return 0;
}

int Tour(const Transport& call) {
  std::printf("== open two workbooks ==\n");
  Run(call, "OPEN sales");
  Run(call, "OPEN forecast nocomp");
  Run(call, "LIST");

  std::printf("\n== single edits (one recalc each) ==\n");
  Run(call, "SET sales A1 100");
  Run(call, "SET sales A2 250");
  Run(call, "SET sales A3 75");
  Run(call, "FORMULA sales B1 SUM(A1:A3)");
  Run(call, "GET sales B1");

  std::printf("\n== a batch: 6 edits, ONE merged dirty-set + recalc ==\n");
  Run(call,
      "BATCH sales 6\n"
      "SET A1 110\n"
      "SET A2 260\n"
      "SET A3 85\n"
      "FORMULA B2 B1*2\n"
      "FORMULA B3 SUM(B1:B2)\n"
      "SET C1 \"quarterly total\"");
  Run(call, "GET sales B1");
  Run(call, "GET sales B2");
  Run(call, "GET sales B3");
  Run(call, "GET sales C1");

  std::printf("\n== independent sessions don't interfere ==\n");
  Run(call, "FORMULA forecast A1 1+1");
  Run(call, "GET forecast A1");
  Run(call, "GET sales A1");

  std::printf("\n== persistence round trip ==\n");
  // Unique per process: the example doubles as a ctest smoke test and
  // concurrent runs (build/ and build-tsan/) must not race on one file.
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("taco_service_client_demo." + std::to_string(::getpid()) +
        ".tsheet"))
          .string();
  Run(call, "SAVE sales " + path);
  Run(call, "CLOSE sales");
  Run(call, "LOAD sales2 " + path);
  Run(call, "GET sales2 B3");

  std::printf("\n== storage layer: checkpoint + report ==\n");
  // CHECKPOINT is SAVE under its durability name (snapshot + WAL
  // rotation when the server runs --wal-dir); STORAGE shows where the
  // durable state lives.
  Run(call, "CHECKPOINT sales2");
  Run(call, "STORAGE sales2");
  std::remove(path.c_str());

  std::printf("\n== per-session and service stats ==\n");
  Run(call, "STATS sales2");
  Run(call, "STATS");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* connect_spec = nullptr;
  const char* script_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--connect") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--connect needs a host:port operand\n");
        return 1;
      }
      connect_spec = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: service_client [--connect host:port] [script]\n");
      return 0;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      // A typo'd flag must not be mistaken for a script path — the
      // resulting "cannot open script '--conect'" hides the real error.
      std::fprintf(stderr, "unknown flag '%s' (see --help)\n", argv[i]);
      return 1;
    } else {
      script_path = argv[i];
    }
  }

  if (connect_spec != nullptr) {
    std::string host;
    uint16_t port = 0;
    Status status = ParseHostPort(connect_spec, &host, &port);
    if (!status.ok()) {
      std::fprintf(stderr, "--connect: %s\n", status.ToString().c_str());
      return 1;
    }
    SocketClient client;
    status = client.Connect(host, port);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "connected to %s:%u\n", host.c_str(), port);
    Transport call = [&client](const std::string& command) {
      auto response = client.Call(command);
      return response.ok() ? *response
                           : "(transport) " + response.status().ToString();
    };
    return script_path != nullptr ? ReplayScript(call, script_path)
                                  : Tour(call);
  }

  WorkbookServiceOptions options;
  options.worker_threads = 2;
  WorkbookService service(options);
  CommandProcessor processor(&service);
  Transport call = [&processor](const std::string& command) {
    return processor.Execute(command);
  };
  return script_path != nullptr ? ReplayScript(call, script_path)
                                : Tour(call);
}
