// Corpus analysis pipeline: generate a synthetic corpus, write it to
// .tsheet files, load the files back (the xls/xlsx ingestion path of the
// paper's prototype), and report per-file compression statistics — a
// miniature of the paper's Sec. VI-B analysis.
//
//   $ ./corpus_analyzer [output_dir]

#include <cstdio>
#include <filesystem>

#include "corpus/generator.h"
#include "graph/nocomp_graph.h"
#include "sheet/textio.h"
#include "taco/taco_graph.h"

using namespace taco;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/taco_corpus_demo";
  std::filesystem::create_directories(dir);

  // A small Enron-flavored corpus.
  CorpusProfile profile = CorpusProfile::Enron();
  profile.num_sheets = 6;
  profile.min_formulas_per_sheet = 500;
  profile.max_formulas_per_sheet = 4000;
  profile.max_region_len = 1500;
  CorpusGenerator generator(profile);

  std::printf("writing %d sheets to %s ...\n", profile.num_sheets,
              dir.c_str());
  std::vector<std::string> paths;
  for (int i = 0; i < profile.num_sheets; ++i) {
    CorpusSheet cs = generator.GenerateSheet(i);
    std::string path = dir + "/" + cs.sheet.name() + ".tsheet";
    if (Status s = SaveSheetFile(cs.sheet, path); !s.ok()) {
      std::printf("save failed: %s\n", s.ToString().c_str());
      return 1;
    }
    paths.push_back(path);
  }

  std::printf("\n%-12s %10s %10s %10s %9s  %s\n", "file", "deps", "nocomp",
              "taco", "remain", "dominant pattern");
  for (const std::string& path : paths) {
    auto sheet = LoadSheetFile(path);
    if (!sheet.ok()) {
      std::printf("load failed: %s\n", sheet.status().ToString().c_str());
      return 1;
    }
    NoCompGraph nocomp;
    TacoGraph taco;
    (void)BuildGraphFromSheet(*sheet, &nocomp);
    (void)BuildGraphFromSheet(*sheet, &taco);

    // The pattern responsible for the most reduced edges in this file.
    std::string dominant = "-";
    uint64_t best = 0;
    for (const auto& [type, stat] : taco.PatternStats()) {
      if (type == PatternType::kSingle) continue;
      if (stat.reduced() > best) {
        best = stat.reduced();
        dominant = std::string(PatternTypeToString(type));
      }
    }
    std::printf("%-12s %10llu %10zu %10zu %8.2f%%  %s\n",
                sheet->name().c_str(),
                static_cast<unsigned long long>(taco.NumRawDependencies()),
                nocomp.NumEdges(), taco.NumEdges(),
                100.0 * static_cast<double>(taco.NumEdges()) /
                    static_cast<double>(nocomp.NumEdges()),
                dominant.c_str());
  }
  std::printf(
      "\nEach file round-tripped through the .tsheet format, was re-parsed,\n"
      "and compressed to a few percent of its uncompressed formula graph.\n");
  return 0;
}
