// Formula auditing: trace the precedents and dependents of a cell, like
// Excel's "Trace Precedents"/"Trace Dependents" arrows or the TACO Lens
// plug-in — the paper's second motivating application (Sec. I).
//
//   $ ./audit_trace

#include <cstdio>

#include "eval/evaluator.h"
#include "formula/references.h"
#include "sheet/sheet.h"
#include "taco/taco_graph.h"

using namespace taco;

namespace {

// One BFS level of direct precedents: the ranges a cell reads directly.
void PrintDirectPrecedents(const Sheet& sheet, const Cell& cell, int depth,
                           int max_depth) {
  if (depth > max_depth) return;
  const CellContent* content = sheet.Get(cell);
  if (content == nullptr || !content->IsFormula()) return;
  std::vector<A1Reference> refs = ExtractReferences(*content->formula().ast);
  for (const A1Reference& ref : refs) {
    std::printf("%*s%s reads %s\n", depth * 2, "", cell.ToString().c_str(),
                ref.range.ToString().c_str());
    if (ref.range.IsSingleCell()) {
      PrintDirectPrecedents(sheet, ref.range.head, depth + 1, max_depth);
    }
  }
}

}  // namespace

int main() {
  // A small financial model with an error to hunt: revenue, costs, margin,
  // and a summary cell.
  Sheet sheet;
  (void)sheet.SetText(Cell{1, 1}, "Q1");
  (void)sheet.SetNumber(Cell{2, 1}, 1200);  // B1 revenue
  (void)sheet.SetNumber(Cell{3, 1}, 700);   // C1 costs
  (void)sheet.SetFormula(Cell{4, 1}, "B1-C1");            // D1 profit
  (void)Autofill(&sheet, Cell{4, 1}, Range(4, 1, 4, 4));  // D1:D4
  (void)sheet.SetNumber(Cell{2, 2}, 1400);
  (void)sheet.SetNumber(Cell{3, 2}, 800);
  (void)sheet.SetNumber(Cell{2, 3}, 1500);
  (void)sheet.SetNumber(Cell{3, 3}, 950);
  (void)sheet.SetNumber(Cell{2, 4}, 1700);
  (void)sheet.SetText(Cell{3, 4}, "tbd");  // the data-entry error
  (void)sheet.SetFormula(Cell{4, 6}, "SUM(D1:D4)");       // D6 total
  (void)sheet.SetFormula(Cell{4, 7}, "D6/SUM(B1:B4)");    // D7 margin

  Evaluator evaluator(&sheet);
  std::printf("D7 (margin) = %s\n\n",
              evaluator.EvaluateCell(Cell{4, 7}).ToString().c_str());

  // Trace precedents of the margin cell (structural, via the formula
  // text), like the auditing arrows.
  std::printf("precedent trace of D7:\n");
  PrintDirectPrecedents(sheet, Cell{4, 7}, 1, 3);

  // The graph view answers the transitive question in one query.
  TacoGraph graph;
  (void)BuildGraphFromSheet(sheet, &graph);
  std::printf("\ntransitive precedents of D7:");
  for (const Range& r : graph.FindPrecedents(Range(Cell{4, 7}))) {
    std::printf(" %s", r.ToString().c_str());
  }

  // And the impact question: what is affected if C4 is fixed?
  std::printf("\ncells affected by fixing C4:");
  for (const Range& r : graph.FindDependents(Range(Cell{3, 4}))) {
    std::printf(" %s", r.ToString().c_str());
  }
  std::printf("\n\nC4 holds \"%s\" — a text cell feeding D4, which makes\n",
              sheet.Get(Cell{3, 4})->text().c_str());
  std::printf("the whole margin column suspect. Fix it and recheck:\n");
  (void)sheet.SetNumber(Cell{3, 4}, 1000);
  Evaluator fresh(&sheet);
  std::printf("D7 (margin) = %s\n",
              fresh.EvaluateCell(Cell{4, 7}).ToString().c_str());
  return 0;
}
