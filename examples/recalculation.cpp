// Recalculation: a live spreadsheet engine on top of the formula graph —
// the paper's motivating application (Sec. I). An update's latency is
// dominated by identifying the dirty set; swapping the graph from NoComp
// to TACO shrinks exactly that step.
//
//   $ ./recalculation

#include <cstdio>

#include "eval/recalc.h"
#include "graph/nocomp_graph.h"
#include "taco/taco_graph.h"

using namespace taco;

namespace {

// A year-to-date ledger: amounts in B, running totals in C (a chain), a
// commission rate in F1 applied in column D.
Sheet LedgerSheet(int rows) {
  Sheet sheet;
  for (int row = 1; row <= rows; ++row) {
    (void)sheet.SetNumber(Cell{2, row}, (row * 37) % 250);  // B: amounts
  }
  (void)sheet.SetNumber(Cell{6, 1}, 0.15);  // F1: commission rate
  (void)sheet.SetFormula(Cell{3, 1}, "B1");
  (void)sheet.SetFormula(Cell{3, 2}, "C1+B2");  // running total chain
  (void)Autofill(&sheet, Cell{3, 2}, Range(3, 2, 3, rows));
  (void)sheet.SetFormula(Cell{4, 1}, "C1*$F$1");  // commission column
  (void)Autofill(&sheet, Cell{4, 1}, Range(4, 1, 4, rows));
  return sheet;
}

void Demo(const char* label, Sheet sheet, DependencyGraph* graph) {
  (void)BuildGraphFromSheet(sheet, graph);
  RecalcEngine engine(&sheet, graph);

  std::printf("--- %s (%zu graph edges) ---\n", label, graph->NumEdges());
  std::printf("C10000 initial: %s\n",
              engine.GetValue(Cell{3, 10000}).ToString().c_str());

  // Update B5: the running total chain and every commission below row 5
  // must recalculate.
  auto result = engine.SetNumber(Cell{2, 5}, 1000);
  if (!result.ok()) {
    std::printf("update failed: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf(
      "update B5: %llu dirty cells found in %.3f ms, %llu recalculated\n",
      static_cast<unsigned long long>(result->dirty_cells),
      result->find_dependents_ms,
      static_cast<unsigned long long>(result->recalculated));
  std::printf("C10000 after: %s\n",
              engine.GetValue(Cell{3, 10000}).ToString().c_str());

  // Change the commission rate: only column D is dirty.
  result = engine.SetNumber(Cell{6, 1}, 0.2);
  std::printf(
      "update F1: %llu dirty cells found in %.3f ms\n",
      static_cast<unsigned long long>(result->dirty_cells),
      result->find_dependents_ms);
  std::printf("D123 (commission): %s\n",
              engine.GetValue(Cell{4, 123}).ToString().c_str());
}

}  // namespace

int main() {
  const int kRows = 10000;
  {
    TacoGraph graph;
    Demo("TACO-backed engine", LedgerSheet(kRows), &graph);
  }
  std::printf("\n");
  {
    NoCompGraph graph;
    Demo("NoComp-backed engine", LedgerSheet(kRows), &graph);
  }
  std::printf(
      "\nThe engines compute identical values; the dirty-set time (the\n"
      "part on the critical path for returning control to the user) is\n"
      "where TACO wins.\n");
  return 0;
}
