// taco_shell: an interactive mini-spreadsheet REPL over the full stack —
// sheet model, formula parser, TACO-compressed formula graph, evaluator,
// and recalculation engine. A fifth runnable example, and a handy way to
// poke at compression behavior by hand.
//
//   $ ./taco_shell
//   > set B1 = =SUM(A1:A3)
//   > set A1 = 5
//   > get B1
//   > deps A1
//   > precs B1
//   > fill B1 B1:B100
//   > stats
//   > save /tmp/demo.tsheet
//
// Reads commands from stdin; also accepts a script file as argv[1].

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "eval/recalc.h"
#include "sheet/textio.h"
#include "taco/taco_graph.h"

using namespace taco;

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  set <cell> = <value|=formula>   write a cell (and recalculate)\n"
      "  get <cell>                      evaluate and print a cell\n"
      "  show <cell>                     print the stored content\n"
      "  deps <cell|range>               transitive dependents\n"
      "  precs <cell|range>              transitive precedents\n"
      "  clear <range>                   clear cells\n"
      "  fill <src> <range>              autofill from a source cell\n"
      "  stats                           graph compression statistics\n"
      "  edges                           list compressed edges\n"
      "  save <path> | load <path>       .tsheet round trip\n"
      "  help | quit\n");
}

struct Shell {
  Sheet sheet;
  TacoGraph graph;
  RecalcEngine engine{&sheet, &graph};

  // Rebuilds graph and engine after bulk operations (fill/load).
  void Rebuild() {
    graph = TacoGraph();
    (void)BuildGraphFromSheet(sheet, &graph);
    engine = RecalcEngine(&sheet, &graph);
  }

  void PrintRanges(const std::vector<Range>& ranges) {
    if (ranges.empty()) {
      std::printf("(none)\n");
      return;
    }
    uint64_t cells = 0;
    for (const Range& r : ranges) {
      std::printf("%s ", r.ToString().c_str());
      cells += r.Area();
    }
    std::printf(" [%llu cells in %zu ranges]\n",
                static_cast<unsigned long long>(cells), ranges.size());
  }

  bool Execute(const std::string& line) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty() || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      PrintHelp();
      return true;
    }

    auto parse_cell = [&](const std::string& text) -> std::optional<Cell> {
      auto cell = ParseCellA1(text);
      if (!cell.ok()) {
        std::printf("bad cell '%s': %s\n", text.c_str(),
                    cell.status().ToString().c_str());
        return std::nullopt;
      }
      return *cell;
    };
    auto parse_range = [&](const std::string& text) -> std::optional<Range> {
      auto ref = ParseA1(text);
      if (!ref.ok()) {
        std::printf("bad range '%s': %s\n", text.c_str(),
                    ref.status().ToString().c_str());
        return std::nullopt;
      }
      return ref->range;
    };

    if (cmd == "set") {
      std::string cell_text, eq;
      in >> cell_text >> eq;
      std::string rest;
      std::getline(in, rest);
      while (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
      auto cell = parse_cell(cell_text);
      if (!cell || eq != "=") {
        if (eq != "=") std::printf("usage: set <cell> = <value>\n");
        return true;
      }
      Result<RecalcResult> result = [&]() -> Result<RecalcResult> {
        if (!rest.empty() && rest[0] == '=') {
          return engine.SetFormula(*cell, rest.substr(1));
        }
        char* end = nullptr;
        double number = std::strtod(rest.c_str(), &end);
        if (end == rest.c_str() + rest.size() && !rest.empty()) {
          return engine.SetNumber(*cell, number);
        }
        return engine.SetText(*cell, rest);
      }();
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        std::printf("%s = %s  (%llu dirty, dirty-set in %.3f ms)\n",
                    cell->ToString().c_str(),
                    engine.GetValue(*cell).ToString().c_str(),
                    static_cast<unsigned long long>(result->dirty_cells),
                    result->find_dependents_ms);
      }
      return true;
    }
    if (cmd == "get") {
      std::string text;
      in >> text;
      if (auto cell = parse_cell(text)) {
        std::printf("%s = %s\n", cell->ToString().c_str(),
                    engine.GetValue(*cell).ToString().c_str());
      }
      return true;
    }
    if (cmd == "show") {
      std::string text;
      in >> text;
      if (auto cell = parse_cell(text)) {
        const CellContent* content = sheet.Get(*cell);
        std::printf("%s: %s\n", cell->ToString().c_str(),
                    content ? content->ToString().c_str() : "(blank)");
      }
      return true;
    }
    if (cmd == "deps" || cmd == "precs") {
      std::string text;
      in >> text;
      if (auto range = parse_range(text)) {
        PrintRanges(cmd == "deps" ? graph.FindDependents(*range)
                                  : graph.FindPrecedents(*range));
      }
      return true;
    }
    if (cmd == "clear") {
      std::string text;
      in >> text;
      if (auto range = parse_range(text)) {
        Status s = engine.ClearRange(*range).status();
        std::printf("%s\n", s.ok() ? "ok" : s.ToString().c_str());
      }
      return true;
    }
    if (cmd == "fill") {
      std::string src_text, range_text;
      in >> src_text >> range_text;
      auto src = parse_cell(src_text);
      auto range = parse_range(range_text);
      if (src && range) {
        Status s = Autofill(&sheet, *src, *range);
        if (!s.ok()) {
          std::printf("autofill failed: %s\n", s.ToString().c_str());
        } else {
          Rebuild();
          std::printf("filled %s; graph now %zu edges for %llu deps\n",
                      range->ToString().c_str(), graph.NumEdges(),
                      static_cast<unsigned long long>(
                          graph.NumRawDependencies()));
        }
      }
      return true;
    }
    if (cmd == "stats") {
      std::printf("cells %zu, formulas %zu, compressed edges %zu, raw deps "
                  "%llu, vertices %zu\n",
                  sheet.cell_count(), sheet.formula_cell_count(),
                  graph.NumEdges(),
                  static_cast<unsigned long long>(graph.NumRawDependencies()),
                  graph.NumVertices());
      for (const auto& [type, stat] : graph.PatternStats()) {
        std::printf("  %-9s edges=%llu deps=%llu reduced=%llu\n",
                    std::string(PatternTypeToString(type)).c_str(),
                    static_cast<unsigned long long>(stat.edges),
                    static_cast<unsigned long long>(stat.dependencies),
                    static_cast<unsigned long long>(stat.reduced()));
      }
      return true;
    }
    if (cmd == "edges") {
      graph.ForEachEdge([](const CompressedEdge& edge) {
        std::printf("  %s\n", edge.ToString().c_str());
      });
      return true;
    }
    if (cmd == "save" || cmd == "load") {
      std::string path;
      in >> path;
      if (cmd == "save") {
        Status s = SaveSheetFile(sheet, path);
        std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      } else {
        auto loaded = LoadSheetFile(path);
        if (!loaded.ok()) {
          std::printf("%s\n", loaded.status().ToString().c_str());
        } else {
          sheet = std::move(*loaded);
          Rebuild();
          std::printf("loaded %zu cells, %zu compressed edges\n",
                      sheet.cell_count(), graph.NumEdges());
        }
      }
      return true;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Shell shell;
  std::istream* input = &std::cin;
  std::ifstream script;
  bool interactive = argc <= 1;
  if (!interactive) {
    script.open(argv[1]);
    if (!script) {
      std::printf("cannot open script '%s'\n", argv[1]);
      return 1;
    }
    input = &script;
  }
  if (interactive) {
    std::printf("taco_shell — type 'help' for commands\n");
  }
  std::string line;
  while ((interactive && std::printf("> ") && std::fflush(stdout) == 0,
          std::getline(*input, line))) {
    if (!interactive) std::printf("> %s\n", line.c_str());
    if (!shell.Execute(line)) break;
  }
  return 0;
}
